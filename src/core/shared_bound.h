#ifndef SPATIAL_CORE_SHARED_BOUND_H_
#define SPATIAL_CORE_SHARED_BOUND_H_

#include <atomic>
#include <cstdint>
#include <cstring>
#include <limits>

namespace spatial {

// A monotonically tightening upper bound on the k-th nearest squared
// distance, shared by searches running concurrently over disjoint shards
// of one dataset (shard/shard_router.h).
//
// Why it is sound: the k-th smallest distance within any *subset* of the
// data is >= the k-th smallest within the whole dataset, so every value a
// shard publishes (its current local k-th distance once its buffer holds k
// candidates) is a valid upper bound on the global k-th distance — and so
// is the minimum over shards. A shard pruning an MBR whose MINDIST exceeds
// this bound can only discard objects strictly farther than the global
// k-th neighbor, i.e. objects that the cross-shard merge would drop
// anyway. Timing therefore changes how much work laggard shards do, never
// which objects the merged answer contains (E19 measures the saved pages).
//
// Lock-free: squared distances are non-negative IEEE-754 doubles, whose
// total order coincides with the order of their bit patterns as unsigned
// integers, so min-tracking runs as a CAS loop on one uint64 cell.
class SharedPruneBound {
 public:
  SharedPruneBound() : bits_(Encode(kInf)) {}
  SharedPruneBound(const SharedPruneBound&) = delete;
  SharedPruneBound& operator=(const SharedPruneBound&) = delete;

  double LoadSq() const {
    return Decode(bits_.load(std::memory_order_relaxed));
  }

  // Lowers the bound to `dist_sq` if that is tighter; never raises it.
  void TightenSq(double dist_sq) {
    const uint64_t bits = Encode(dist_sq);
    uint64_t cur = bits_.load(std::memory_order_relaxed);
    while (bits < cur &&
           !bits_.compare_exchange_weak(cur, bits,
                                        std::memory_order_relaxed)) {
    }
  }

  // Re-arms for a new query. Callers must not reset while any search still
  // holds a pointer to this bound.
  void Reset() { bits_.store(Encode(kInf), std::memory_order_relaxed); }

 private:
  static constexpr double kInf = std::numeric_limits<double>::infinity();

  static uint64_t Encode(double d) {
    uint64_t bits;
    static_assert(sizeof(bits) == sizeof(d));
    std::memcpy(&bits, &d, sizeof(bits));
    return bits;
  }
  static double Decode(uint64_t bits) {
    double d;
    std::memcpy(&d, &bits, sizeof(d));
    return d;
  }

  std::atomic<uint64_t> bits_;
};

}  // namespace spatial

#endif  // SPATIAL_CORE_SHARED_BOUND_H_
