#include "core/reverse_knn.h"

#include <algorithm>
#include <cmath>

#include "common/macros.h"
#include "core/geo_browse.h"
#include "core/knn.h"
#include "geom/metrics.h"
#include "geom/metrics_simd.h"

namespace spatial {

int ReverseKnnSectorFilter::SectorOf(const Point2& q, const Point2& p) {
  const double angle = std::atan2(p[1] - q[1], p[0] - q[0]);  // [-pi, pi]
  int sector = static_cast<int>((angle + M_PI) / (M_PI / 3.0));
  if (sector >= kNumSectors) sector = kNumSectors - 1;  // angle == +pi
  if (sector < 0) sector = 0;
  return sector;
}

ReverseKnnSectorFilter::ReverseKnnSectorFilter(const Point2& query, uint32_t k)
    : query_(query),
      // k candidates per sector suffice for points in general position; two
      // extra make the lemma robust to boundary ties, mirroring the k = 1
      // implementation's base of 3. The cap bounds adversarial
      // duplicate-heavy inputs; verification keeps over-generation safe.
      base_(k + 2),
      cap_(std::max<uint32_t>(16, 4 * (k + 2))) {
  for (double& d : band_dist_sq_) {
    d = std::numeric_limits<double>::infinity();
  }
}

bool ReverseKnnSectorFilter::Offer(const Point2& location, double dist_sq) {
  if (dist_sq == 0.0) {
    // Coincides with q: an unconditional reverse k-NN (q is at distance 0,
    // nothing is strictly closer) and irrelevant to sector bookkeeping.
    return true;
  }
  const int sector = SectorOf(query_, location);
  const bool accept =
      kept_[sector] < base_ ||
      (kept_[sector] < cap_ &&
       dist_sq <= band_dist_sq_[sector] * (1.0 + 1e-12));
  if (!accept) return false;
  ++kept_[sector];
  if (kept_[sector] == base_) band_dist_sq_[sector] = dist_sq;
  return true;
}

bool ReverseKnnSectorFilter::Closed(double dist_sq) const {
  for (int s = 0; s < kNumSectors; ++s) {
    if (kept_[s] < base_) return false;  // sector not yet saturated
    if (kept_[s] < cap_ &&
        dist_sq <= band_dist_sq_[s] * (1.0 + 1e-12)) {
      return false;  // still inside the sector's tie band
    }
  }
  return true;
}

bool ReverseKnnQualifies(const std::vector<Neighbor>& around,
                         uint64_t candidate_id, double candidate_dist_sq,
                         uint32_t k) {
  // `around` holds the k+1 nearest objects to the candidate's location
  // (including the candidate itself at distance 0), so if >= k others are
  // strictly closer than the query, at least k of them appear here.
  uint32_t strictly_closer = 0;
  for (const Neighbor& n : around) {
    if (n.id == candidate_id) continue;
    if (n.dist_sq < candidate_dist_sq) ++strictly_closer;
  }
  return strictly_closer < k;
}

namespace {

// Phase 1: sector-guided candidate generation by geometry-preserving
// distance browsing. Fills scratch->geo_items with the candidates in
// ascending (dist_sq, id) browse order.
Status CollectCandidates(const NodeAccessor<2>& access, PageId root_page,
                         bool empty, const Point2& query, uint32_t k,
                         QueryScratch<2>* scratch, QueryStats* stats) {
  std::vector<GeoHeapItem<2>>& candidates = scratch->geo_items;
  candidates.clear();
  if (empty) return Status::OK();

  ReverseKnnSectorFilter filter(query, k);
  auto key = [&query, stats](const SoaBlock<2>& soa, double* keys) {
    MinDistSqBatchSoa(query, soa, keys);
    if (stats != nullptr) stats->distance_computations += soa.n;
  };
  GeoBrowse<2, decltype(key)> browse(access, root_page, empty, key, scratch,
                                     stats,
                                     "reverse knn: node page has bad magic");
  GeoHeapItem<2> item;
  for (;;) {
    SPATIAL_ASSIGN_OR_RETURN(bool more, browse.Next(&item));
    if (!more) break;
    // Pop keys are nondecreasing, so once every sector is closed at this
    // distance nothing deeper in the queue can become a candidate.
    if (filter.Closed(item.dist_sq)) break;
    if (!item.is_object) {
      SPATIAL_RETURN_IF_ERROR(browse.Expand(item));
      continue;
    }
    if (filter.Offer(item.mbr.Center(), item.dist_sq)) {
      candidates.push_back(item);
    }
  }
  return Status::OK();
}

template <class Tree>
Status ReverseKnnCandidatesImpl(const Tree& tree, const Point2& query,
                                const ReverseKnnOptions& options,
                                QueryScratch<2>* scratch,
                                std::vector<Entry<2>>* out,
                                QueryStats* stats) {
  SPATIAL_CHECK(scratch != nullptr && out != nullptr);
  SPATIAL_RETURN_IF_ERROR(options.Validate());
  out->clear();
  SPATIAL_RETURN_IF_ERROR(CollectCandidates(NodeAccessor<2>(tree),
                                            tree.root_page(), tree.empty(),
                                            query, options.k, scratch, stats));
  for (const GeoHeapItem<2>& c : scratch->geo_items) {
    out->push_back(Entry<2>{c.mbr, c.id});
  }
  return Status::OK();
}

template <class Tree>
Status ReverseKnnSearchImpl(const Tree& tree, const Point2& query,
                            const ReverseKnnOptions& options,
                            QueryScratch<2>* scratch,
                            std::vector<Neighbor>* out, QueryStats* stats) {
  SPATIAL_CHECK(scratch != nullptr && out != nullptr);
  SPATIAL_RETURN_IF_ERROR(options.Validate());
  out->clear();
  SPATIAL_RETURN_IF_ERROR(CollectCandidates(NodeAccessor<2>(tree),
                                            tree.root_page(), tree.empty(),
                                            query, options.k, scratch, stats));

  // Phase 2: exact verification. The nested kNN reuses the same scratch —
  // it never touches geo_items, and tmp_neighbors is its output vector, so
  // the whole query stays allocation-free in steady state.
  KnnOptions knn;
  knn.k = options.k + 1;  // the candidate itself plus up to k others
  for (const GeoHeapItem<2>& c : scratch->geo_items) {
    if (c.dist_sq == 0.0) {
      out->push_back(Neighbor{c.id, 0.0});
      continue;
    }
    SPATIAL_RETURN_IF_ERROR(KnnSearchInto(tree, c.mbr.Center(), knn, scratch,
                                          &scratch->tmp_neighbors, stats));
    if (ReverseKnnQualifies(scratch->tmp_neighbors, c.id, c.dist_sq,
                            options.k)) {
      out->push_back(Neighbor{c.id, c.dist_sq});
    }
  }
  // (distance, id) order: deterministic output whatever order candidate
  // generation produced — the router's cross-shard path sorts identically.
  std::sort(out->begin(), out->end(),
            [](const Neighbor& a, const Neighbor& b) {
              if (a.dist_sq != b.dist_sq) return a.dist_sq < b.dist_sq;
              return a.id < b.id;
            });
  return Status::OK();
}

}  // namespace

Status ReverseKnnCandidates(const RTree<2>& tree, const Point2& query,
                            const ReverseKnnOptions& options,
                            QueryScratch<2>* scratch,
                            std::vector<Entry<2>>* out, QueryStats* stats) {
  return ReverseKnnCandidatesImpl(tree, query, options, scratch, out, stats);
}

Status ReverseKnnCandidates(const ResidentTree<2>& tree, const Point2& query,
                            const ReverseKnnOptions& options,
                            QueryScratch<2>* scratch,
                            std::vector<Entry<2>>* out, QueryStats* stats) {
  return ReverseKnnCandidatesImpl(tree, query, options, scratch, out, stats);
}

Status ReverseKnnSearch(const RTree<2>& tree, const Point2& query,
                        const ReverseKnnOptions& options,
                        QueryScratch<2>* scratch, std::vector<Neighbor>* out,
                        QueryStats* stats) {
  return ReverseKnnSearchImpl(tree, query, options, scratch, out, stats);
}

Status ReverseKnnSearch(const ResidentTree<2>& tree, const Point2& query,
                        const ReverseKnnOptions& options,
                        QueryScratch<2>* scratch, std::vector<Neighbor>* out,
                        QueryStats* stats) {
  return ReverseKnnSearchImpl(tree, query, options, scratch, out, stats);
}

}  // namespace spatial
