#ifndef SPATIAL_CORE_GEO_BROWSE_H_
#define SPATIAL_CORE_GEO_BROWSE_H_

#include <algorithm>
#include <utility>

#include "common/result.h"
#include "core/node_access.h"
#include "core/query_stats.h"
#include "core/scratch.h"
#include "geom/rect.h"

namespace spatial {

// Geometry-preserving incremental distance browse, shared by the
// reverse-kNN and NN-skyline traversals (the queries that still need the
// popped box *after* the node holding it is gone — sector assignment,
// per-source dominance tests). Works over either backend through
// NodeAccessor, keeps all queue state in the scratch arena (zero
// steady-state allocations), and computes keys with the batch kernel the
// caller supplies, so one node expansion prices all entries in one pass.
//
// Unlike IncrementalKnn, Next() surfaces *both* nodes and objects: the
// caller decides per popped node whether to descend (Expand) or prune it,
// which is what makes the skyline's dominance pruning possible.
//
// KeyFn signature: void(const SoaBlock<D>& soa, double* keys) — fills
// keys[0..soa.n) with the squared-distance key of each staged entry and
// charges its own distance_computations.
template <int D, class KeyFn>
class GeoBrowse {
 public:
  GeoBrowse(const NodeAccessor<D>& access, PageId root_page, bool empty,
            KeyFn key, QueryScratch<D>* scratch, QueryStats* stats,
            const char* bad_magic_message)
      : access_(access),
        key_(std::move(key)),
        scratch_(scratch),
        stats_(stats),
        bad_magic_message_(bad_magic_message) {
    scratch_->geo_heap.clear();
    if (!empty) {
      scratch_->geo_heap.push_back(
          GeoHeapItem<D>{0.0, /*is_object=*/false, root_page,
                         Rect<D>::Empty()});
      if (stats_ != nullptr) ++stats_->heap_pushes;
    }
  }

  // Pops the item with the smallest key (node or object) into *out.
  // Returns false when the queue is exhausted. Keys of popped items are
  // nondecreasing as long as the caller only Expands popped nodes.
  Result<bool> Next(GeoHeapItem<D>* out) {
    std::vector<GeoHeapItem<D>>& heap = scratch_->geo_heap;
    if (heap.empty()) return false;
    std::pop_heap(heap.begin(), heap.end());
    *out = heap.back();
    heap.pop_back();
    if (stats_ != nullptr) ++stats_->heap_pops;
    return true;
  }

  // Descends a node previously returned by Next: expands it and enqueues
  // its children (or objects) with their keys and geometry.
  Status Expand(const GeoHeapItem<D>& item) {
    ExpandedNode<D> node;
    SPATIAL_RETURN_IF_ERROR(access_.Expand(static_cast<PageId>(item.id),
                                           scratch_, &node,
                                           bad_magic_message_));
    if (stats_ != nullptr) {
      ++stats_->nodes_visited;
      if (node.is_leaf()) {
        ++stats_->leaf_nodes_visited;
      } else {
        ++stats_->internal_nodes_visited;
      }
    }
    if (obs::TraceContext* t = scratch_->trace) t->CountNode(node.level);
    const uint32_t n = node.count;
    if (n == 0) return Status::OK();

    const bool is_leaf = node.is_leaf();
    double* keys =
        scratch_->min_dist.EnsureCapacity(QueryScratch<D>::DistSlots(n));
    key_(node.soa, keys);
    if (stats_ != nullptr) {
      stats_->heap_pushes += n;
      if (is_leaf) {
        stats_->objects_examined += n;
      } else {
        stats_->abl_entries_generated += n;
      }
    }
    // The box geometry is read back out of the staged SoA planes — both
    // backends expose them, and the plane values are the entry's exact
    // lo/hi doubles, so the reconstructed Rect is bit-exact.
    std::vector<GeoHeapItem<D>>& heap = scratch_->geo_heap;
    for (uint32_t i = 0; i < n; ++i) {
      GeoHeapItem<D> child;
      child.dist_sq = keys[i];
      child.is_object = is_leaf;
      child.id = node.id(i);
      for (int d = 0; d < D; ++d) {
        child.mbr.lo[d] = node.soa.lo(d)[i];
        child.mbr.hi[d] = node.soa.hi(d)[i];
      }
      heap.push_back(child);
      std::push_heap(heap.begin(), heap.end());
    }
    return Status::OK();
  }

 private:
  const NodeAccessor<D> access_;
  KeyFn key_;
  QueryScratch<D>* scratch_;
  QueryStats* stats_;
  const char* bad_magic_message_;
};

}  // namespace spatial

#endif  // SPATIAL_CORE_GEO_BROWSE_H_
