#include "core/best_first.h"

#include "core/incremental.h"

namespace spatial {

template <int D>
Result<std::vector<Neighbor>> BestFirstKnn(const RTree<D>& tree,
                                           const Point<D>& query, uint32_t k,
                                           QueryScratch<D>* scratch,
                                           QueryStats* stats) {
  if (k < 1) return Status::InvalidArgument("k must be >= 1");
  std::vector<Neighbor> result;
  result.reserve(k);
  IncrementalKnn<D> iter(tree, query, scratch, stats);
  while (result.size() < k) {
    SPATIAL_ASSIGN_OR_RETURN(std::optional<Neighbor> next, iter.Next());
    if (!next.has_value()) break;
    result.push_back(*next);
  }
  return result;
}

template <int D>
Result<std::vector<Neighbor>> BestFirstKnn(const RTree<D>& tree,
                                           const Point<D>& query, uint32_t k,
                                           QueryStats* stats) {
  return BestFirstKnn<D>(tree, query, k, nullptr, stats);
}

template <int D>
Result<std::vector<Neighbor>> BestFirstKnn(const ResidentTree<D>& tree,
                                           const Point<D>& query, uint32_t k,
                                           QueryScratch<D>* scratch,
                                           QueryStats* stats) {
  if (k < 1) return Status::InvalidArgument("k must be >= 1");
  std::vector<Neighbor> result;
  result.reserve(k);
  IncrementalKnn<D> iter(tree, query, scratch, stats);
  while (result.size() < k) {
    SPATIAL_ASSIGN_OR_RETURN(std::optional<Neighbor> next, iter.Next());
    if (!next.has_value()) break;
    result.push_back(*next);
  }
  return result;
}

template <int D>
Result<std::vector<Neighbor>> BestFirstKnn(const ResidentTree<D>& tree,
                                           const Point<D>& query, uint32_t k,
                                           QueryStats* stats) {
  return BestFirstKnn<D>(tree, query, k, nullptr, stats);
}

template Result<std::vector<Neighbor>> BestFirstKnn<2>(const RTree<2>&,
                                                       const Point<2>&,
                                                       uint32_t, QueryStats*);
template Result<std::vector<Neighbor>> BestFirstKnn<3>(const RTree<3>&,
                                                       const Point<3>&,
                                                       uint32_t, QueryStats*);
template Result<std::vector<Neighbor>> BestFirstKnn<4>(const RTree<4>&,
                                                       const Point<4>&,
                                                       uint32_t, QueryStats*);

template Result<std::vector<Neighbor>> BestFirstKnn<2>(const RTree<2>&,
                                                       const Point<2>&,
                                                       uint32_t,
                                                       QueryScratch<2>*,
                                                       QueryStats*);
template Result<std::vector<Neighbor>> BestFirstKnn<3>(const RTree<3>&,
                                                       const Point<3>&,
                                                       uint32_t,
                                                       QueryScratch<3>*,
                                                       QueryStats*);
template Result<std::vector<Neighbor>> BestFirstKnn<4>(const RTree<4>&,
                                                       const Point<4>&,
                                                       uint32_t,
                                                       QueryScratch<4>*,
                                                       QueryStats*);

template Result<std::vector<Neighbor>> BestFirstKnn<2>(const ResidentTree<2>&,
                                                       const Point<2>&,
                                                       uint32_t, QueryStats*);
template Result<std::vector<Neighbor>> BestFirstKnn<3>(const ResidentTree<3>&,
                                                       const Point<3>&,
                                                       uint32_t, QueryStats*);
template Result<std::vector<Neighbor>> BestFirstKnn<4>(const ResidentTree<4>&,
                                                       const Point<4>&,
                                                       uint32_t, QueryStats*);

template Result<std::vector<Neighbor>> BestFirstKnn<2>(const ResidentTree<2>&,
                                                       const Point<2>&,
                                                       uint32_t,
                                                       QueryScratch<2>*,
                                                       QueryStats*);
template Result<std::vector<Neighbor>> BestFirstKnn<3>(const ResidentTree<3>&,
                                                       const Point<3>&,
                                                       uint32_t,
                                                       QueryScratch<3>*,
                                                       QueryStats*);
template Result<std::vector<Neighbor>> BestFirstKnn<4>(const ResidentTree<4>&,
                                                       const Point<4>&,
                                                       uint32_t,
                                                       QueryScratch<4>*,
                                                       QueryStats*);

}  // namespace spatial
