#include "core/incremental.h"

#include "geom/metrics.h"
#include "rtree/node.h"

namespace spatial {

template <int D>
IncrementalKnn<D>::IncrementalKnn(const RTree<D>& tree, const Point<D>& query,
                                  QueryStats* stats)
    : tree_(&tree), query_(query), stats_(stats) {
  if (!tree.empty()) {
    queue_.push(QueueItem{0.0, /*is_object=*/false, tree.root_page()});
    if (stats_ != nullptr) ++stats_->heap_pushes;
  }
}

template <int D>
Result<std::optional<Neighbor>> IncrementalKnn<D>::Next() {
  while (!queue_.empty()) {
    const QueueItem item = queue_.top();
    queue_.pop();
    if (stats_ != nullptr) ++stats_->heap_pops;
    if (item.is_object) {
      return std::optional<Neighbor>(Neighbor{item.id, item.dist_sq});
    }
    SPATIAL_RETURN_IF_ERROR(ExpandNode(static_cast<PageId>(item.id)));
  }
  return std::optional<Neighbor>(std::nullopt);
}

template <int D>
Status IncrementalKnn<D>::ExpandNode(PageId node_id) {
  BufferPool* pool = tree_->pool();
  SPATIAL_ASSIGN_OR_RETURN(PageHandle handle, pool->Fetch(node_id));
  NodeView<D> view(handle.data(), pool->page_size());
  if (!view.has_valid_magic()) {
    return Status::Corruption("incremental knn: node page has bad magic");
  }
  if (stats_ != nullptr) {
    ++stats_->nodes_visited;
    if (view.is_leaf()) {
      ++stats_->leaf_nodes_visited;
    } else {
      ++stats_->internal_nodes_visited;
    }
  }
  const bool is_leaf = view.is_leaf();
  const uint32_t n = view.count();
  for (uint32_t i = 0; i < n; ++i) {
    const Entry<D> e = view.entry(i);
    if (is_leaf) {
      const double dist_sq = ObjectDistSq(query_, e.mbr);
      queue_.push(QueueItem{dist_sq, /*is_object=*/true, e.id});
      if (stats_ != nullptr) {
        ++stats_->objects_examined;
        ++stats_->distance_computations;
        ++stats_->heap_pushes;
      }
    } else {
      const double dist_sq = MinDistSq(query_, e.mbr);
      queue_.push(
          QueueItem{dist_sq, /*is_object=*/false, static_cast<PageId>(e.id)});
      if (stats_ != nullptr) {
        ++stats_->abl_entries_generated;
        ++stats_->distance_computations;
        ++stats_->heap_pushes;
      }
    }
  }
  return Status::OK();
}

template class IncrementalKnn<2>;
template class IncrementalKnn<3>;
template class IncrementalKnn<4>;

}  // namespace spatial
