#include "core/incremental.h"

#include <algorithm>

#include "geom/metrics_simd.h"
#include "rtree/node.h"

namespace spatial {

template <int D>
IncrementalKnn<D>::IncrementalKnn(const RTree<D>& tree, const Point<D>& query,
                                  QueryStats* stats)
    : IncrementalKnn(tree, query, nullptr, stats) {}

template <int D>
IncrementalKnn<D>::IncrementalKnn(const RTree<D>& tree, const Point<D>& query,
                                  QueryScratch<D>* scratch, QueryStats* stats)
    : IncrementalKnn(NodeAccessor<D>(tree), tree.root_page(), tree.empty(),
                     query, scratch, stats) {}

template <int D>
IncrementalKnn<D>::IncrementalKnn(const ResidentTree<D>& tree,
                                  const Point<D>& query, QueryStats* stats)
    : IncrementalKnn(tree, query, nullptr, stats) {}

template <int D>
IncrementalKnn<D>::IncrementalKnn(const ResidentTree<D>& tree,
                                  const Point<D>& query,
                                  QueryScratch<D>* scratch, QueryStats* stats)
    : IncrementalKnn(NodeAccessor<D>(tree), tree.root_page(), tree.empty(),
                     query, scratch, stats) {}

template <int D>
IncrementalKnn<D>::IncrementalKnn(const NodeAccessor<D>& access,
                                  PageId root_page, bool empty,
                                  const Point<D>& query,
                                  QueryScratch<D>* scratch, QueryStats* stats)
    : access_(access), query_(query), stats_(stats), scratch_(scratch) {
  if (scratch_ == nullptr) {
    owned_scratch_ = std::make_unique<QueryScratch<D>>();
    scratch_ = owned_scratch_.get();
  }
  scratch_->heap.clear();
  if (!empty) {
    scratch_->heap.push_back(
        DistHeapItem{0.0, /*is_object=*/false, root_page});
    if (stats_ != nullptr) ++stats_->heap_pushes;
  }
}

template <int D>
Result<std::optional<Neighbor>> IncrementalKnn<D>::Next() {
  std::vector<DistHeapItem>& heap = scratch_->heap;
  while (!heap.empty()) {
    std::pop_heap(heap.begin(), heap.end());
    const DistHeapItem item = heap.back();
    heap.pop_back();
    if (stats_ != nullptr) ++stats_->heap_pops;
    if (item.is_object) {
      return std::optional<Neighbor>(Neighbor{item.id, item.dist_sq});
    }
    SPATIAL_RETURN_IF_ERROR(ExpandNode(static_cast<PageId>(item.id)));
  }
  return std::optional<Neighbor>(std::nullopt);
}

template <int D>
Status IncrementalKnn<D>::ExpandNode(PageId node_id) {
  ExpandedNode<D> node;
  SPATIAL_RETURN_IF_ERROR(access_.Expand(
      node_id, scratch_, &node, "incremental knn: node page has bad magic"));
  if (stats_ != nullptr) {
    ++stats_->nodes_visited;
    if (node.is_leaf()) {
      ++stats_->leaf_nodes_visited;
    } else {
      ++stats_->internal_nodes_visited;
    }
  }
  if (obs::TraceContext* t = scratch_->trace) t->CountNode(node.level);
  const bool is_leaf = node.is_leaf();
  const uint32_t n = node.count;
  if (n == 0) return Status::OK();

  // Expansion never recurses, so a paged leaf's pin is simply held inside
  // `node` for the whole call; the metric for all entries runs through the
  // dispatched SoA kernel over the node's planes (ObjectDist and MINDIST
  // are the same kernel — both are MBR MINDIST).
  double* dist =
      scratch_->min_dist.EnsureCapacity(QueryScratch<D>::DistSlots(n));
  if (is_leaf) {
    ObjectDistSqBatchSoa(query_, node.soa, dist);
  } else {
    MinDistSqBatchSoa(query_, node.soa, dist);
  }
  if (stats_ != nullptr) {
    stats_->distance_computations += n;
    stats_->heap_pushes += n;
    if (is_leaf) {
      stats_->objects_examined += n;
    } else {
      stats_->abl_entries_generated += n;
    }
  }

  std::vector<DistHeapItem>& heap = scratch_->heap;
  for (uint32_t i = 0; i < n; ++i) {
    heap.push_back(DistHeapItem{dist[i], is_leaf, node.id(i)});
    std::push_heap(heap.begin(), heap.end());
  }
  return Status::OK();
}

template class IncrementalKnn<2>;
template class IncrementalKnn<3>;
template class IncrementalKnn<4>;

}  // namespace spatial
