#include "core/incremental.h"

#include <algorithm>

#include "geom/metrics_simd.h"
#include "rtree/node.h"

namespace spatial {

template <int D>
IncrementalKnn<D>::IncrementalKnn(const RTree<D>& tree, const Point<D>& query,
                                  QueryStats* stats)
    : IncrementalKnn(tree, query, nullptr, stats) {}

template <int D>
IncrementalKnn<D>::IncrementalKnn(const RTree<D>& tree, const Point<D>& query,
                                  QueryScratch<D>* scratch, QueryStats* stats)
    : tree_(&tree), query_(query), stats_(stats), scratch_(scratch) {
  if (scratch_ == nullptr) {
    owned_scratch_ = std::make_unique<QueryScratch<D>>();
    scratch_ = owned_scratch_.get();
  }
  scratch_->heap.clear();
  if (!tree.empty()) {
    scratch_->heap.push_back(
        DistHeapItem{0.0, /*is_object=*/false, tree.root_page()});
    if (stats_ != nullptr) ++stats_->heap_pushes;
  }
}

template <int D>
Result<std::optional<Neighbor>> IncrementalKnn<D>::Next() {
  std::vector<DistHeapItem>& heap = scratch_->heap;
  while (!heap.empty()) {
    std::pop_heap(heap.begin(), heap.end());
    const DistHeapItem item = heap.back();
    heap.pop_back();
    if (stats_ != nullptr) ++stats_->heap_pops;
    if (item.is_object) {
      return std::optional<Neighbor>(Neighbor{item.id, item.dist_sq});
    }
    SPATIAL_RETURN_IF_ERROR(ExpandNode(static_cast<PageId>(item.id)));
  }
  return std::optional<Neighbor>(std::nullopt);
}

template <int D>
Status IncrementalKnn<D>::ExpandNode(PageId node_id) {
  BufferPool* pool = tree_->pool();
  SPATIAL_ASSIGN_OR_RETURN(PageHandle handle, pool->Fetch(node_id));
  NodeView<D> view(handle.data(), pool->page_size());
  if (!view.has_valid_magic()) {
    return Status::Corruption("incremental knn: node page has bad magic");
  }
  if (stats_ != nullptr) {
    ++stats_->nodes_visited;
    if (view.is_leaf()) {
      ++stats_->leaf_nodes_visited;
    } else {
      ++stats_->internal_nodes_visited;
    }
  }
  if (obs::TraceContext* t = scratch_->trace) t->CountNode(view.level());
  const bool is_leaf = view.is_leaf();
  const uint32_t n = view.count();
  if (n == 0) return Status::OK();

  // Expansion never recurses, so the pin is held for the whole call and
  // the packed entries are read in place for their ids; the metric for all
  // entries runs through the dispatched SoA kernel (ObjectDist and MINDIST
  // are the same kernel — both are MBR MINDIST).
  const Entry<D>* entries = view.entries();
  const SoaBlock<D> soa = scratch_->StageSoa(entries, n);
  double* dist =
      scratch_->min_dist.EnsureCapacity(QueryScratch<D>::DistSlots(n));
  if (is_leaf) {
    ObjectDistSqBatchSoa(query_, soa, dist);
  } else {
    MinDistSqBatchSoa(query_, soa, dist);
  }
  if (stats_ != nullptr) {
    stats_->distance_computations += n;
    stats_->heap_pushes += n;
    if (is_leaf) {
      stats_->objects_examined += n;
    } else {
      stats_->abl_entries_generated += n;
    }
  }

  std::vector<DistHeapItem>& heap = scratch_->heap;
  for (uint32_t i = 0; i < n; ++i) {
    heap.push_back(DistHeapItem{dist[i], is_leaf, entries[i].id});
    std::push_heap(heap.begin(), heap.end());
  }
  return Status::OK();
}

template class IncrementalKnn<2>;
template class IncrementalKnn<3>;
template class IncrementalKnn<4>;

}  // namespace spatial
