#include "core/constrained.h"

#include <algorithm>
#include <limits>

#include "common/macros.h"
#include "geom/metrics.h"
#include "rtree/node.h"

namespace spatial {
namespace {

// Note: strategies S1/S2 are unsound under a region constraint — the object
// MINMAXDIST guarantees may lie outside the region — so this traversal uses
// only window pruning plus S3, regardless of the option flags.
template <int D>
class ConstrainedTraversal {
 public:
  ConstrainedTraversal(const RTree<D>& tree, const Point<D>& query,
                       const Rect<D>& region, const KnnOptions& options,
                       QueryStats* stats)
      : tree_(tree),
        query_(query),
        region_(region),
        options_(options),
        stats_(stats),
        buffer_(options.k) {}

  Result<std::vector<Neighbor>> Run() {
    SPATIAL_RETURN_IF_ERROR(Visit(tree_.root_page()));
    return buffer_.TakeSorted();
  }

 private:
  struct Slot {
    PageId child;
    double min_dist_sq;
    double min_max_dist_sq;
  };

  double PruneBoundSq() const {
    return options_.use_s3 ? buffer_.WorstDistSq()
                           : std::numeric_limits<double>::infinity();
  }

  Status Visit(PageId node_id) {
    SPATIAL_ASSIGN_OR_RETURN(PageHandle handle, tree_.pool()->Fetch(node_id));
    NodeView<D> view(handle.data(), tree_.pool()->page_size());
    if (!view.has_valid_magic()) {
      return Status::Corruption("constrained knn: node page has bad magic");
    }
    if (stats_ != nullptr) {
      ++stats_->nodes_visited;
      if (view.is_leaf()) {
        ++stats_->leaf_nodes_visited;
      } else {
        ++stats_->internal_nodes_visited;
      }
    }
    if (view.is_leaf()) {
      const uint32_t n = view.count();
      for (uint32_t i = 0; i < n; ++i) {
        const Entry<D> e = view.entry(i);
        if (!e.mbr.Intersects(region_)) continue;
        buffer_.Offer(e.id, ObjectDistSq(query_, e.mbr));
        if (stats_ != nullptr) {
          ++stats_->objects_examined;
          ++stats_->distance_computations;
        }
      }
      return Status::OK();
    }
    std::vector<Slot> abl;
    abl.reserve(view.count());
    const uint32_t n = view.count();
    for (uint32_t i = 0; i < n; ++i) {
      const Entry<D> e = view.entry(i);
      if (!e.mbr.Intersects(region_)) continue;  // window pruning
      abl.push_back(Slot{static_cast<PageId>(e.id), MinDistSq(query_, e.mbr),
                         MinMaxDistSq(query_, e.mbr)});
      if (stats_ != nullptr) {
        ++stats_->abl_entries_generated;
        stats_->distance_computations += 2;
      }
    }
    handle.Release();
    switch (options_.ordering) {
      case AblOrdering::kMinDist:
        std::sort(abl.begin(), abl.end(), [](const Slot& a, const Slot& b) {
          return a.min_dist_sq < b.min_dist_sq;
        });
        break;
      case AblOrdering::kMinMaxDist:
        std::sort(abl.begin(), abl.end(), [](const Slot& a, const Slot& b) {
          return a.min_max_dist_sq < b.min_max_dist_sq;
        });
        break;
      case AblOrdering::kNone:
        break;
    }
    for (const Slot& slot : abl) {
      if (slot.min_dist_sq > PruneBoundSq()) {
        if (stats_ != nullptr) ++stats_->pruned_s3;
        continue;
      }
      SPATIAL_RETURN_IF_ERROR(Visit(slot.child));
    }
    return Status::OK();
  }

  const RTree<D>& tree_;
  const Point<D> query_;
  const Rect<D> region_;
  const KnnOptions options_;
  QueryStats* stats_;
  NeighborBuffer buffer_;
};

}  // namespace

template <int D>
Result<std::vector<Neighbor>> ConstrainedKnnSearch(const RTree<D>& tree,
                                                   const Point<D>& query,
                                                   const Rect<D>& region,
                                                   const KnnOptions& options,
                                                   QueryStats* stats) {
  SPATIAL_RETURN_IF_ERROR(options.Validate());
  if (tree.empty() || region.IsEmpty()) return std::vector<Neighbor>{};
  ConstrainedTraversal<D> traversal(tree, query, region, options, stats);
  return traversal.Run();
}

template Result<std::vector<Neighbor>> ConstrainedKnnSearch<2>(
    const RTree<2>&, const Point<2>&, const Rect<2>&, const KnnOptions&,
    QueryStats*);
template Result<std::vector<Neighbor>> ConstrainedKnnSearch<3>(
    const RTree<3>&, const Point<3>&, const Rect<3>&, const KnnOptions&,
    QueryStats*);

}  // namespace spatial
