#ifndef SPATIAL_CORE_KNN_H_
#define SPATIAL_CORE_KNN_H_

#include <cmath>
#include <cstdint>
#include <limits>
#include <utility>
#include <vector>

#include "common/result.h"
#include "core/neighbor_buffer.h"
#include "core/query_stats.h"
#include "core/scratch.h"
#include "core/shared_bound.h"
#include "geom/point.h"
#include "rtree/rtree.h"
#include "storage/resident_tree.h"

namespace spatial {

// Order in which the Active Branch List (the child MBRs of the node being
// visited) is traversed. The paper evaluates MINDIST and MINMAXDIST
// orderings and finds MINDIST superior for depth-first traversal; kNone
// (arrival order) isolates the contribution of ordering in experiment E5.
enum class AblOrdering {
  kMinDist,
  kMinMaxDist,
  kNone,
};

const char* AblOrderingName(AblOrdering ordering);

// Configuration of the branch-and-bound search. The three switches map
// one-to-one onto the paper's pruning strategies:
//
//  s1: discard an MBR whose MINDIST exceeds the minimum MINMAXDIST among
//      its siblings (downward pruning; valid for k = 1 only).
//  s2: lower the nearest-neighbor *estimate* to the minimum MINMAXDIST seen
//      (allows pruning before any actual object is found; k = 1 only).
//  s3: discard an MBR whose MINDIST exceeds the distance to the k-th
//      nearest object found so far (upward pruning; the workhorse).
//
// Correctness holds for every combination, including all three disabled
// (which degenerates to a full traversal). S1/S2 rely on the MBR-face
// property that guarantees only a single object, so with k > 1 they are
// automatically inactive regardless of the flags.
struct KnnOptions {
  uint32_t k = 1;
  AblOrdering ordering = AblOrdering::kMinDist;
  bool use_s1 = true;
  bool use_s2 = true;
  bool use_s3 = true;

  // Cross-shard bound streaming (shard/shard_router.h). When set, the
  // search additionally prunes against this shared upper bound on the
  // global k-th distance and publishes its own local k-th distance into it
  // once its buffer is full. Results are unchanged — the bound can only
  // discard objects beyond the global k-th neighbor (see
  // core/shared_bound.h for the argument) — but laggard shards skip work.
  // Standalone (single-tree) callers leave it null.
  SharedPruneBound* shared_bound = nullptr;

  // Distance-bounded kNN: only objects at distance <= max_distance qualify
  // as answers. Seeds the prune bound before descent (the search starts at
  // max_distance^2 instead of +inf), so it composes with S1/S3, the shared
  // shard bound, and both tiers; the result may then hold fewer than k
  // neighbors even on a large tree. Infinity (the default) disables it.
  double max_distance = std::numeric_limits<double>::infinity();

  // Approximate kNN (arXiv:1303.1951): subtree descent is pruned at
  // bound / (1+epsilon)^2 in squared-distance space, so every reported
  // distance r_i satisfies r_i <= (1+epsilon) * t_i against the true i-th
  // distance t_i. Objects inside visited leaves still compete at the
  // exact bound — their distances are already computed, so relaxing there
  // would cost recall without saving work. epsilon = 0 is bit-identical
  // to the exact search (the relaxation multiplies the bound by exactly
  // 1.0). Exact request kinds must leave this at 0; the service enforces
  // that.
  double epsilon = 0.0;

  // Early-termination visit budget: after max_visits node visits the
  // descent stops and the best candidates found so far are returned. No
  // distance contract — recall is an empirical property measured by the
  // E21 harness. 0 (the default) means unlimited.
  uint64_t max_visits = 0;

  // Test hooks. `force_full_sort` disables the lazy-heap ABL path that
  // MINDIST ordering otherwise takes, so tests can assert both paths visit
  // nodes in the identical order. `visit_trace` (if set) receives the
  // PageId of every node visited, in order.
  bool force_full_sort = false;
  std::vector<uint64_t>* visit_trace = nullptr;

  Status Validate() const {
    if (k < 1) return Status::InvalidArgument("k must be >= 1");
    if (std::isnan(max_distance) || max_distance < 0.0) {
      return Status::InvalidArgument("max_distance must be >= 0");
    }
    if (!std::isfinite(epsilon) || epsilon < 0.0) {
      return Status::InvalidArgument("epsilon must be finite and >= 0");
    }
    return Status::OK();
  }
};

// Finds the k objects of `tree` nearest to `query` using the ordered
// depth-first branch-and-bound algorithm of "Nearest Neighbor Queries"
// (SIGMOD 1995). Returns fewer than k neighbors iff the tree holds fewer
// than k objects. `stats` may be null.
template <int D>
Result<std::vector<Neighbor>> KnnSearch(const RTree<D>& tree,
                                        const Point<D>& query,
                                        const KnnOptions& options,
                                        QueryStats* stats);

// Allocation-free variant: identical algorithm and results, but all
// traversal state lives in `scratch` and the answer is written into `out`
// (cleared first, sorted by ascending distance). Reusing one scratch and
// one output vector across queries makes steady-state execution perform
// zero heap allocations (see docs/PERF.md). `scratch` and `out` must be
// non-null; `stats` may be null.
template <int D>
Status KnnSearchInto(const RTree<D>& tree, const Point<D>& query,
                     const KnnOptions& options, QueryScratch<D>* scratch,
                     std::vector<Neighbor>* out, QueryStats* stats);

// Resident-tier variant: the identical search over a compiled ResidentTree
// (storage/resident_tree.h) — no buffer-pool pins, no page translation, no
// per-visit transpose. Answers, visit order, and every QueryStats counter
// except the page-access ones match the paged path bit for bit
// (tests/resident_tree_test.cc memcmp-gates this).
template <int D>
Status KnnSearchInto(const ResidentTree<D>& tree, const Point<D>& query,
                     const KnnOptions& options, QueryScratch<D>* scratch,
                     std::vector<Neighbor>* out, QueryStats* stats);

// Answers of a batched kNN call, CSR-packed: query i's neighbors are
// neighbors[offsets[i] .. offsets[i+1]), sorted by ascending distance, and
// stats[i] holds that query's counters. Clear() retains capacity so one
// result object can be reused across batches allocation-free.
struct BatchKnnResult {
  std::vector<Neighbor> neighbors;
  std::vector<uint32_t> offsets;  // size num_queries() + 1
  std::vector<QueryStats> stats;  // size num_queries()

  size_t num_queries() const {
    return offsets.empty() ? 0 : offsets.size() - 1;
  }

  // Neighbors of query i as a (pointer, count) span.
  std::pair<const Neighbor*, size_t> Query(size_t i) const {
    return {neighbors.data() + offsets[i],
            static_cast<size_t>(offsets[i + 1] - offsets[i])};
  }

  void Clear() {
    neighbors.clear();
    offsets.clear();
    stats.clear();
  }
};

// Runs `num_queries` kNN queries through one shared scratch, amortizing all
// per-query setup. Results are identical to issuing the queries one by one
// through KnnSearch (the batch is an execution strategy, not a different
// algorithm). `scratch` and `out` must be non-null.
template <int D>
Status KnnSearchBatch(const RTree<D>& tree, const Point<D>* queries,
                      size_t num_queries, const KnnOptions& options,
                      QueryScratch<D>* scratch, BatchKnnResult* out);

// Resident-tier batch variant (see the ResidentTree KnnSearchInto above).
template <int D>
Status KnnSearchBatch(const ResidentTree<D>& tree, const Point<D>* queries,
                      size_t num_queries, const KnnOptions& options,
                      QueryScratch<D>* scratch, BatchKnnResult* out);

extern template Result<std::vector<Neighbor>> KnnSearch<2>(
    const RTree<2>&, const Point<2>&, const KnnOptions&, QueryStats*);
extern template Result<std::vector<Neighbor>> KnnSearch<3>(
    const RTree<3>&, const Point<3>&, const KnnOptions&, QueryStats*);
extern template Result<std::vector<Neighbor>> KnnSearch<4>(
    const RTree<4>&, const Point<4>&, const KnnOptions&, QueryStats*);

extern template Status KnnSearchInto<2>(const RTree<2>&, const Point<2>&,
                                        const KnnOptions&, QueryScratch<2>*,
                                        std::vector<Neighbor>*, QueryStats*);
extern template Status KnnSearchInto<3>(const RTree<3>&, const Point<3>&,
                                        const KnnOptions&, QueryScratch<3>*,
                                        std::vector<Neighbor>*, QueryStats*);
extern template Status KnnSearchInto<4>(const RTree<4>&, const Point<4>&,
                                        const KnnOptions&, QueryScratch<4>*,
                                        std::vector<Neighbor>*, QueryStats*);

extern template Status KnnSearchInto<2>(const ResidentTree<2>&,
                                        const Point<2>&, const KnnOptions&,
                                        QueryScratch<2>*,
                                        std::vector<Neighbor>*, QueryStats*);
extern template Status KnnSearchInto<3>(const ResidentTree<3>&,
                                        const Point<3>&, const KnnOptions&,
                                        QueryScratch<3>*,
                                        std::vector<Neighbor>*, QueryStats*);
extern template Status KnnSearchInto<4>(const ResidentTree<4>&,
                                        const Point<4>&, const KnnOptions&,
                                        QueryScratch<4>*,
                                        std::vector<Neighbor>*, QueryStats*);

extern template Status KnnSearchBatch<2>(const RTree<2>&, const Point<2>*,
                                         size_t, const KnnOptions&,
                                         QueryScratch<2>*, BatchKnnResult*);
extern template Status KnnSearchBatch<3>(const RTree<3>&, const Point<3>*,
                                         size_t, const KnnOptions&,
                                         QueryScratch<3>*, BatchKnnResult*);
extern template Status KnnSearchBatch<4>(const RTree<4>&, const Point<4>*,
                                         size_t, const KnnOptions&,
                                         QueryScratch<4>*, BatchKnnResult*);

extern template Status KnnSearchBatch<2>(const ResidentTree<2>&,
                                         const Point<2>*, size_t,
                                         const KnnOptions&, QueryScratch<2>*,
                                         BatchKnnResult*);
extern template Status KnnSearchBatch<3>(const ResidentTree<3>&,
                                         const Point<3>*, size_t,
                                         const KnnOptions&, QueryScratch<3>*,
                                         BatchKnnResult*);
extern template Status KnnSearchBatch<4>(const ResidentTree<4>&,
                                         const Point<4>*, size_t,
                                         const KnnOptions&, QueryScratch<4>*,
                                         BatchKnnResult*);

}  // namespace spatial

#endif  // SPATIAL_CORE_KNN_H_
