#ifndef SPATIAL_CORE_KNN_H_
#define SPATIAL_CORE_KNN_H_

#include <cstdint>
#include <vector>

#include "common/result.h"
#include "core/neighbor_buffer.h"
#include "core/query_stats.h"
#include "geom/point.h"
#include "rtree/rtree.h"

namespace spatial {

// Order in which the Active Branch List (the child MBRs of the node being
// visited) is traversed. The paper evaluates MINDIST and MINMAXDIST
// orderings and finds MINDIST superior for depth-first traversal; kNone
// (arrival order) isolates the contribution of ordering in experiment E5.
enum class AblOrdering {
  kMinDist,
  kMinMaxDist,
  kNone,
};

const char* AblOrderingName(AblOrdering ordering);

// Configuration of the branch-and-bound search. The three switches map
// one-to-one onto the paper's pruning strategies:
//
//  s1: discard an MBR whose MINDIST exceeds the minimum MINMAXDIST among
//      its siblings (downward pruning; valid for k = 1 only).
//  s2: lower the nearest-neighbor *estimate* to the minimum MINMAXDIST seen
//      (allows pruning before any actual object is found; k = 1 only).
//  s3: discard an MBR whose MINDIST exceeds the distance to the k-th
//      nearest object found so far (upward pruning; the workhorse).
//
// Correctness holds for every combination, including all three disabled
// (which degenerates to a full traversal). S1/S2 rely on the MBR-face
// property that guarantees only a single object, so with k > 1 they are
// automatically inactive regardless of the flags.
struct KnnOptions {
  uint32_t k = 1;
  AblOrdering ordering = AblOrdering::kMinDist;
  bool use_s1 = true;
  bool use_s2 = true;
  bool use_s3 = true;

  Status Validate() const {
    if (k < 1) return Status::InvalidArgument("k must be >= 1");
    return Status::OK();
  }
};

// Finds the k objects of `tree` nearest to `query` using the ordered
// depth-first branch-and-bound algorithm of "Nearest Neighbor Queries"
// (SIGMOD 1995). Returns fewer than k neighbors iff the tree holds fewer
// than k objects. `stats` may be null.
template <int D>
Result<std::vector<Neighbor>> KnnSearch(const RTree<D>& tree,
                                        const Point<D>& query,
                                        const KnnOptions& options,
                                        QueryStats* stats);

extern template Result<std::vector<Neighbor>> KnnSearch<2>(
    const RTree<2>&, const Point<2>&, const KnnOptions&, QueryStats*);
extern template Result<std::vector<Neighbor>> KnnSearch<3>(
    const RTree<3>&, const Point<3>&, const KnnOptions&, QueryStats*);
extern template Result<std::vector<Neighbor>> KnnSearch<4>(
    const RTree<4>&, const Point<4>&, const KnnOptions&, QueryStats*);

}  // namespace spatial

#endif  // SPATIAL_CORE_KNN_H_
