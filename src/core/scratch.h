#ifndef SPATIAL_CORE_SCRATCH_H_
#define SPATIAL_CORE_SCRATCH_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>
#include <type_traits>
#include <vector>

#include "core/neighbor_buffer.h"
#include "geom/metrics_simd.h"
#include "obs/trace.h"
#include "rtree/entry.h"
#include "storage/disk.h"

namespace spatial {

// Reusable per-query traversal storage (see docs/PERF.md).
//
// The branch-and-bound search of the paper spends its time in two places:
// evaluating MINDIST/MINMAXDIST over a node's entries and maintaining the
// Active Branch List. Both need only storage that is bounded by tree height
// and fan-out, so one QueryScratch — owned per worker and handed to every
// query — lets steady-state query execution run without touching the heap
// at all: the arena's buffers grow to their high-water mark during the
// first queries and are reused verbatim afterwards.
//
// A QueryScratch may be shared by any number of *sequential* queries (the
// batched kNN API and the query-service workers do exactly that) but never
// by two concurrent ones. It borrows nothing; dropping it is always safe.

// Alignment of the staging buffers. 64 bytes = one cache line, and wide
// enough for any SIMD ISA the auto-vectorizer may target.
inline constexpr size_t kScratchAlignment = 64;

// Growable 64-byte-aligned array of trivially copyable elements. Contents
// are uninitialized and are *not* preserved across EnsureCapacity calls —
// this is staging memory, not a container.
template <typename T>
class AlignedArray {
  static_assert(std::is_trivially_copyable_v<T>,
                "AlignedArray is raw staging storage");

 public:
  AlignedArray() = default;

  // Returns a pointer to at least `n` writable slots, reallocating only
  // when the high-water mark grows.
  T* EnsureCapacity(size_t n) {
    if (n > capacity_) Grow(n);
    return data_.get();
  }

  T* data() { return data_.get(); }
  const T* data() const { return data_.get(); }
  size_t capacity() const { return capacity_; }

 private:
  struct AlignedDelete {
    void operator()(T* p) const {
      ::operator delete(p, std::align_val_t{kScratchAlignment});
    }
  };

  void Grow(size_t n) {
    size_t cap = capacity_ == 0 ? 16 : capacity_;
    while (cap < n) cap *= 2;
    data_.reset(static_cast<T*>(
        ::operator new(cap * sizeof(T), std::align_val_t{kScratchAlignment})));
    capacity_ = cap;
  }

  std::unique_ptr<T, AlignedDelete> data_;
  size_t capacity_ = 0;
};

// One Active Branch List slot: a child subtree with its two metrics.
struct AblSlot {
  PageId child = kInvalidPageId;
  double min_dist_sq = 0.0;
  double min_max_dist_sq = 0.0;
};

// Priority-queue item of the best-first / incremental traversals: either a
// subtree (keyed by MINDIST) or an object (keyed by its distance).
struct DistHeapItem {
  double dist_sq = 0.0;
  bool is_object = false;
  uint64_t id = 0;  // object id or child PageId

  // Min-heap on distance under std::push_heap/pop_heap; objects win
  // distance ties so results are emitted as early as possible.
  friend bool operator<(const DistHeapItem& a, const DistHeapItem& b) {
    if (a.dist_sq != b.dist_sq) return a.dist_sq > b.dist_sq;
    return a.is_object < b.is_object;
  }
};

// Child-arena slot of the best-first approximate kNN engine (core/knn.cc):
// a bare (MINDIST, page) pair. An expanded node's surviving children are
// appended as one contiguous *frame* of these; the frame is consumed by
// linear min-scans, never heap-ordered, so appends are plain push_backs.
struct KnnChildSlot {
  double dist_sq = 0.0;
  uint64_t page = 0;
};

// Priority-queue item of the same engine: one *frame* of unvisited
// children (lazy sibling expansion, Hjaltason–Samet style), keyed by the
// exact minimum MINDIST over the frame's live slots
// [pos, end) in QueryScratch::knn_children. Queueing a frame instead of
// its members keeps heap traffic at O(1) per node visit — one pop plus at
// most one successor re-push — where a per-child queue pays fan-out
// push_heaps for siblings that are mostly never expanded. Min-heap under
// std::push_heap/pop_heap; pos breaks key ties so pop order is
// deterministic per tree shape.
struct KnnFrameHeapItem {
  double dist_sq = 0.0;
  uint32_t pos = 0;
  uint32_t end = 0;

  friend bool operator<(const KnnFrameHeapItem& a, const KnnFrameHeapItem& b) {
    if (a.dist_sq != b.dist_sq) return a.dist_sq > b.dist_sq;
    return a.pos > b.pos;
  }
};

// Geometry-preserving browse-queue item (reverse-kNN, NN skyline): like
// DistHeapItem but carrying the MBR, because those traversals need the
// popped box's geometry (sector assignment, per-source dominance tests)
// after the node that held it is long gone. Same min-heap ordering, with
// id as the final tie-break so pop order is deterministic per tree shape.
template <int D>
struct GeoHeapItem {
  double dist_sq = 0.0;
  bool is_object = false;
  uint64_t id = 0;  // object id or child PageId
  Rect<D> mbr;

  friend bool operator<(const GeoHeapItem& a, const GeoHeapItem& b) {
    if (a.dist_sq != b.dist_sq) return a.dist_sq > b.dist_sq;
    if (a.is_object != b.is_object) return a.is_object < b.is_object;
    return a.id > b.id;
  }
};

// The arena proper. Members are deliberately public: the traversals in
// core/ know the reuse discipline, and exposing the buffers keeps the hot
// path free of accessor indirection.
template <int D>
struct QueryScratch {
  // One node's entries, staged contiguously by NodeView::CopyEntries so the
  // batch distance kernels stream them in a single pass.
  AlignedArray<Entry<D>> stage;

  // Distance outputs of the batch kernels, parallel to `stage`. Sized via
  // EnsureDistCapacity: the SIMD kernels store whole vectors, so the
  // arrays cover the node's SoaStride, not just its entry count.
  AlignedArray<double> min_dist;
  AlignedArray<double> min_max_dist;

  // SoA staging planes for the SIMD distance kernels: 2*D planes (lo/hi
  // per dimension) of SoaStride(n) doubles each, refilled per node by
  // StageSoa. Lives here so steady-state queries never allocate.
  AlignedArray<double> soa;

  // Survivor indices of the dispatched bound filter (FilterNotAboveSoa),
  // sized like the distance arrays.
  AlignedArray<uint32_t> filter_idx;

  // Child page ids of the internal node being expanded, copied out of the
  // pinned page so the pin can be dropped before descending.
  AlignedArray<uint64_t> child_ids;

  // Transposes `n` AoS entries (from a NodeView's page image or the AoS
  // `stage` copy) into the SoA planes and returns the kernel-ready view.
  SoaBlock<D> StageSoa(const Entry<D>* entries, uint32_t n) {
    const size_t stride = SoaStride(n);
    double* planes = soa.EnsureCapacity(SoaDoubles(D, n));
    TransposeToSoaDispatched<D>(entries, n, planes, stride);
    return SoaBlock<D>{planes, stride, n};
  }

  // Capacity the distance output arrays need for an n-entry node under the
  // vector kernels (full-vector stores may touch the padded tail).
  static constexpr size_t DistSlots(uint32_t n) { return SoaStride(n); }

  // Active Branch List arena shared by all recursion levels with stack
  // discipline: each Visit() records the current size as its frame base,
  // appends its slots, and truncates back on exit.
  std::vector<AblSlot> abl;

  // Best-first / incremental traversal queue storage.
  std::vector<DistHeapItem> heap;

  // Frame queue and child arena of the best-first approximate kNN engine.
  std::vector<KnnFrameHeapItem> knn_heap;
  std::vector<KnnChildSlot> knn_children;

  // Geometry-preserving browse queue and staging vectors of the
  // reverse-kNN and NN-skyline traversals (core/reverse_knn.h,
  // core/skyline.h). geo_items stages candidates / skyline members;
  // geo_dists holds their per-source distance vectors (skyline);
  // tmp_neighbors receives the nested verification kNN answers (RkNN)
  // so the outer query never allocates in steady state.
  std::vector<GeoHeapItem<D>> geo_heap;
  std::vector<GeoHeapItem<D>> geo_items;
  std::vector<double> geo_dists;
  std::vector<Neighbor> tmp_neighbors;

  // Candidate buffer of the depth-first search; Reset(k) re-arms it per
  // query without releasing storage.
  NeighborBuffer buffer{1};

  // Sampled-tracing hook (docs/OBSERVABILITY.md): when non-null, the
  // traversals record per-level page accesses into it. Null for every
  // untraced query — the hot path pays one pointer test per node visit
  // and allocates nothing either way. The service arms this per query;
  // standalone callers leave it null.
  obs::TraceContext* trace = nullptr;
};

}  // namespace spatial

#endif  // SPATIAL_CORE_SCRATCH_H_
