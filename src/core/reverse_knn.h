#ifndef SPATIAL_CORE_REVERSE_KNN_H_
#define SPATIAL_CORE_REVERSE_KNN_H_

#include <cstdint>
#include <limits>
#include <vector>

#include "common/result.h"
#include "core/neighbor_buffer.h"
#include "core/query_stats.h"
#include "core/scratch.h"
#include "geom/point.h"
#include "rtree/entry.h"
#include "rtree/rtree.h"
#include "storage/resident_tree.h"

namespace spatial {

// Reverse k-nearest neighbors (monochromatic, 2-D points): the objects o
// for which fewer than k *other* objects are strictly closer to o than the
// query point q is — i.e. the objects that would include q in their own
// k-NN answer (ties included). k = 1 reproduces ReverseNnSearch exactly.
//
// Implementation generalizes the Stanoi–Agrawal–El Abbadi sector method
// (see core/reverse_nn.h and Dawar et al., arXiv:1506.04867):
//   1. Partition the plane around q into six 60° sectors and browse
//      objects in ascending distance (geometry-preserving best-first
//      browse over either backend). Within one sector any two points are
//      < 60° apart, so by the law of cosines a point with >= k same-sector
//      points at distance <= its own has those k points strictly closer to
//      it than q — it cannot be a reverse k-NN. Only each sector's k
//      nearest (plus a tie band and slack) survive as candidates.
//   2. Each candidate is verified exactly with a (k+1)-NN query at its
//      location: it qualifies iff fewer than k other objects are strictly
//      closer to it than q is. The verification is exact, so candidate
//      over-generation never changes the answer.
//
// Intended for point objects (degenerate MBRs); extended objects are
// treated by their MBR distance, but the sector lemma is stated for
// points. Only D = 2 is provided — the sector construction is planar; the
// service layer reports kInvalidArgument for other dimensions.
struct ReverseKnnOptions {
  uint32_t k = 1;

  Status Validate() const {
    if (k < 1) return Status::InvalidArgument("k must be >= 1");
    return Status::OK();
  }
};

// Sector bookkeeping of phase 1, shared by the single-tree search and the
// shard router's global candidate re-selection (shard/shard_router.cc):
// feed objects in nondecreasing distance from q; Offer() decides whether
// the object remains a candidate, Closed() whether any farther object can
// still be accepted (monotone in dist_sq, so a browse may stop there).
class ReverseKnnSectorFilter {
 public:
  static constexpr int kNumSectors = 6;

  ReverseKnnSectorFilter(const Point2& query, uint32_t k);

  // `dist_sq` is the squared distance from the query to `location`; calls
  // must be nondecreasing in dist_sq. Objects coinciding with the query
  // (dist_sq == 0) are unconditional reverse k-NN and bypass the sectors.
  bool Offer(const Point2& location, double dist_sq);

  // True once every sector is saturated beyond its tie band at this
  // distance — nothing at distance >= dist_sq can be accepted anymore.
  bool Closed(double dist_sq) const;

  static int SectorOf(const Point2& q, const Point2& p);

 private:
  const Point2 query_;
  const uint32_t base_;  // per-sector keep target: k + tie headroom
  const uint32_t cap_;   // hard cap against adversarial duplicate inputs
  uint32_t kept_[kNumSectors] = {};
  double band_dist_sq_[kNumSectors];  // the base-th distance; +inf before
};

// Exact verification rule shared by core and router: `around` is a
// (k+1)-NN answer at the candidate's location; the candidate (at
// `candidate_dist_sq` from the query) qualifies iff fewer than k *other*
// objects are strictly closer to it than the query is.
bool ReverseKnnQualifies(const std::vector<Neighbor>& around,
                         uint64_t candidate_id, double candidate_dist_sq,
                         uint32_t k);

// Phase 1 only: generates this tree's candidate set (each with retained
// geometry) without verifying, for the shard router's scatter path — the
// verification k-NN must consult the *global* tree, so the router re-runs
// selection over the union and verifies through cross-shard kNN. Output
// entries carry the object MBR; their order is ascending (dist_sq, id).
Status ReverseKnnCandidates(const RTree<2>& tree, const Point2& query,
                            const ReverseKnnOptions& options,
                            QueryScratch<2>* scratch,
                            std::vector<Entry<2>>* out, QueryStats* stats);
Status ReverseKnnCandidates(const ResidentTree<2>& tree, const Point2& query,
                            const ReverseKnnOptions& options,
                            QueryScratch<2>* scratch,
                            std::vector<Entry<2>>* out, QueryStats* stats);

// The full search: candidate generation + exact verification against the
// same tree. `out` (cleared first) receives the reverse k-NN sorted by
// ascending (distance, id). Zero steady-state allocations when `scratch`
// and `out` are reused across queries.
Status ReverseKnnSearch(const RTree<2>& tree, const Point2& query,
                        const ReverseKnnOptions& options,
                        QueryScratch<2>* scratch, std::vector<Neighbor>* out,
                        QueryStats* stats);
Status ReverseKnnSearch(const ResidentTree<2>& tree, const Point2& query,
                        const ReverseKnnOptions& options,
                        QueryScratch<2>* scratch, std::vector<Neighbor>* out,
                        QueryStats* stats);

}  // namespace spatial

#endif  // SPATIAL_CORE_REVERSE_KNN_H_
