#include "core/knn.h"

#include <algorithm>
#include <limits>

#include "common/macros.h"
#include "geom/metrics.h"
#include "rtree/node.h"

namespace spatial {

const char* AblOrderingName(AblOrdering ordering) {
  switch (ordering) {
    case AblOrdering::kMinDist:
      return "mindist";
    case AblOrdering::kMinMaxDist:
      return "minmaxdist";
    case AblOrdering::kNone:
      return "none";
  }
  return "unknown";
}

namespace {

// Relative slack applied to MINMAXDIST-based pruning (S1/S2). MINDIST of a
// descendant box and MINMAXDIST of an ancestor box can denote the same
// geometric distance yet differ by an ulp, because they are computed through
// different floating-point expression trees; without slack, strict
// comparisons can prune the branch holding the guaranteed object. Inflating
// the upper bound keeps it an upper bound, so correctness is unaffected.
// (S3 needs no slack: MINDIST(q, box) <= dist(q, object) holds in floating
// point by monotonicity of per-dimension clamping.)
constexpr double kMinMaxSlack = 1.0 + 1e-9;

// One Active Branch List slot: a child subtree with its two metrics.
struct AblEntry {
  PageId child = kInvalidPageId;
  double min_dist_sq = 0.0;
  double min_max_dist_sq = 0.0;
};

template <int D>
class DepthFirstKnn {
 public:
  DepthFirstKnn(const RTree<D>& tree, const Point<D>& query,
                const KnnOptions& options, QueryStats* stats)
      : tree_(tree),
        query_(query),
        options_(options),
        stats_(stats),
        buffer_(options.k),
        // S1/S2 depend on MINMAXDIST bounding a *single* object, so they
        // are sound only for k = 1.
        s1_active_(options.use_s1 && options.k == 1),
        s2_active_(options.use_s2 && options.k == 1) {}

  Result<std::vector<Neighbor>> Run() {
    SPATIAL_RETURN_IF_ERROR(Visit(tree_.root_page()));
    return buffer_.TakeSorted();
  }

 private:
  // Current pruning bound: actual k-th nearest distance (S3) combined with
  // the MINMAXDIST-based estimate (S2). Branches at MINDIST strictly above
  // the bound cannot improve the result.
  double PruneBoundSq() const {
    double bound = std::numeric_limits<double>::infinity();
    if (options_.use_s3) bound = std::min(bound, buffer_.WorstDistSq());
    if (s2_active_) bound = std::min(bound, estimate_sq_);
    return bound;
  }

  Status Visit(PageId node_id) {
    SPATIAL_ASSIGN_OR_RETURN(PageHandle handle,
                             tree_.pool()->Fetch(node_id));
    NodeView<D> view(handle.data(), tree_.pool()->page_size());
    if (!view.has_valid_magic()) {
      return Status::Corruption("knn: node page has bad magic");
    }
    if (stats_ != nullptr) {
      ++stats_->nodes_visited;
      if (view.is_leaf()) {
        ++stats_->leaf_nodes_visited;
      } else {
        ++stats_->internal_nodes_visited;
      }
    }

    if (view.is_leaf()) {
      const uint32_t n = view.count();
      for (uint32_t i = 0; i < n; ++i) {
        const Entry<D> e = view.entry(i);
        const double dist_sq = ObjectDistSq(query_, e.mbr);
        if (stats_ != nullptr) {
          ++stats_->objects_examined;
          ++stats_->distance_computations;
        }
        buffer_.Offer(e.id, dist_sq);
      }
      return Status::OK();
    }

    // Build the Active Branch List.
    std::vector<AblEntry> abl;
    abl.reserve(view.count());
    const uint32_t n = view.count();
    for (uint32_t i = 0; i < n; ++i) {
      const Entry<D> e = view.entry(i);
      AblEntry slot;
      slot.child = static_cast<PageId>(e.id);
      slot.min_dist_sq = MinDistSq(query_, e.mbr);
      slot.min_max_dist_sq = MinMaxDistSq(query_, e.mbr);
      if (stats_ != nullptr) {
        ++stats_->abl_entries_generated;
        stats_->distance_computations += 2;
      }
      abl.push_back(slot);
    }
    // Release before descending: pin-depth stays at one frame.
    handle.Release();

    switch (options_.ordering) {
      case AblOrdering::kMinDist:
        std::sort(abl.begin(), abl.end(),
                  [](const AblEntry& a, const AblEntry& b) {
                    return a.min_dist_sq < b.min_dist_sq;
                  });
        break;
      case AblOrdering::kMinMaxDist:
        std::sort(abl.begin(), abl.end(),
                  [](const AblEntry& a, const AblEntry& b) {
                    return a.min_max_dist_sq < b.min_max_dist_sq;
                  });
        break;
      case AblOrdering::kNone:
        break;
    }

    if (s1_active_ || s2_active_) {
      double min_minmax = std::numeric_limits<double>::infinity();
      for (const AblEntry& slot : abl) {
        min_minmax = std::min(min_minmax, slot.min_max_dist_sq);
      }
      if (s1_active_) {
        // Strategy 1: some sibling is guaranteed to contain an object at
        // distance <= min_minmax; branches strictly beyond it are dead.
        const double s1_bound = min_minmax * kMinMaxSlack;
        auto keep_end = std::remove_if(
            abl.begin(), abl.end(), [s1_bound](const AblEntry& slot) {
              return slot.min_dist_sq > s1_bound;
            });
        if (stats_ != nullptr) {
          stats_->pruned_s1 +=
              static_cast<uint64_t>(std::distance(keep_end, abl.end()));
        }
        abl.erase(keep_end, abl.end());
      }
      if (s2_active_ && min_minmax * kMinMaxSlack < estimate_sq_) {
        // Strategy 2: tighten the NN distance estimate.
        estimate_sq_ = min_minmax * kMinMaxSlack;
        if (stats_ != nullptr) ++stats_->estimate_updates_s2;
      }
    }

    // Recurse in ABL order, re-testing the bound after every return
    // (strategy 3 / upward pruning).
    for (const AblEntry& slot : abl) {
      if (slot.min_dist_sq > PruneBoundSq()) {
        if (stats_ != nullptr) ++stats_->pruned_s3;
        continue;
      }
      SPATIAL_RETURN_IF_ERROR(Visit(slot.child));
    }
    return Status::OK();
  }

  const RTree<D>& tree_;
  const Point<D> query_;
  const KnnOptions options_;
  QueryStats* stats_;
  NeighborBuffer buffer_;
  const bool s1_active_;
  const bool s2_active_;
  double estimate_sq_ = std::numeric_limits<double>::infinity();
};

}  // namespace

template <int D>
Result<std::vector<Neighbor>> KnnSearch(const RTree<D>& tree,
                                        const Point<D>& query,
                                        const KnnOptions& options,
                                        QueryStats* stats) {
  SPATIAL_RETURN_IF_ERROR(options.Validate());
  if (tree.empty()) return std::vector<Neighbor>{};
  DepthFirstKnn<D> search(tree, query, options, stats);
  return search.Run();
}

template Result<std::vector<Neighbor>> KnnSearch<2>(const RTree<2>&,
                                                    const Point<2>&,
                                                    const KnnOptions&,
                                                    QueryStats*);
template Result<std::vector<Neighbor>> KnnSearch<3>(const RTree<3>&,
                                                    const Point<3>&,
                                                    const KnnOptions&,
                                                    QueryStats*);
template Result<std::vector<Neighbor>> KnnSearch<4>(const RTree<4>&,
                                                    const Point<4>&,
                                                    const KnnOptions&,
                                                    QueryStats*);

}  // namespace spatial
