#include "core/knn.h"

#include <algorithm>
#include <limits>

#include "common/macros.h"
#include "core/node_access.h"
#include "geom/metrics.h"
#include "geom/metrics_simd.h"
#include "rtree/node.h"

namespace spatial {

const char* AblOrderingName(AblOrdering ordering) {
  switch (ordering) {
    case AblOrdering::kMinDist:
      return "mindist";
    case AblOrdering::kMinMaxDist:
      return "minmaxdist";
    case AblOrdering::kNone:
      return "none";
  }
  return "unknown";
}

namespace {

// Relative slack applied to MINMAXDIST-based pruning (S1/S2). MINDIST of a
// descendant box and MINMAXDIST of an ancestor box can denote the same
// geometric distance yet differ by an ulp, because they are computed through
// different floating-point expression trees; without slack, strict
// comparisons can prune the branch holding the guaranteed object. Inflating
// the upper bound keeps it an upper bound, so correctness is unaffected.
// (S3 needs no slack: MINDIST(q, box) <= dist(q, object) holds in floating
// point by monotonicity of per-dimension clamping.)
constexpr double kMinMaxSlack = 1.0 + 1e-9;

// ABL orderings. Ties on the distance key are broken by child page id so
// that every traversal path (full sort, lazy heap) visits tied siblings in
// the same order — the visit-order tests rely on this determinism.
inline bool MinDistLess(const AblSlot& a, const AblSlot& b) {
  if (a.min_dist_sq != b.min_dist_sq) return a.min_dist_sq < b.min_dist_sq;
  return a.child < b.child;
}
inline bool MinMaxDistLess(const AblSlot& a, const AblSlot& b) {
  if (a.min_max_dist_sq != b.min_max_dist_sq) {
    return a.min_max_dist_sq < b.min_max_dist_sq;
  }
  return a.child < b.child;
}

// Truncates the shared ABL arena back to this recursion level's base on
// every exit path (shrinking never allocates).
struct AblFrame {
  std::vector<AblSlot>* arena;
  size_t base;
  ~AblFrame() { arena->resize(base); }
};

// Compile-time node-access policies. The traversal below is templated on
// one of these rather than branching per visit, so the resident
// instantiation compiles down to a table lookup with no ExpandedNode
// staging, no PageHandle, and no backend branch on its hot path — the
// paged instantiation is exactly the NodeAccessor expansion it always was.
// Both yield nodes with the same count/level/soa/id accessors, so the
// traversal source (and therefore answers, visit order, and stats) is
// identical for both backends.
template <int D>
class PagedAccess {
 public:
  using Node = ExpandedNode<D>;
  explicit PagedAccess(const RTree<D>& tree) : access_(tree) {}
  Status Expand(PageId id, QueryScratch<D>* scratch, Node* storage,
                const Node** out, const char* bad_magic_message) const {
    *out = storage;
    return access_.Expand(id, scratch, storage, bad_magic_message);
  }
  void Prefetch(PageId) const {}

 private:
  const NodeAccessor<D> access_;
};

template <int D>
class ResidentAccess {
 public:
  using Node = ResidentNodeRef<D>;
  explicit ResidentAccess(const ResidentTree<D>& tree) : tree_(&tree) {}
  Status Expand(PageId id, QueryScratch<D>*, Node*, const Node** out,
                const char*) const {
    const ResidentNodeRef<D>* node = tree_->Find(id);
    if (node == nullptr) {
      return Status::Corruption("resident tree: unknown node page");
    }
    *out = node;
    return Status::OK();
  }
  void Prefetch(PageId id) const {
    if (const ResidentNodeRef<D>* node = tree_->Find(id)) {
      __builtin_prefetch(node->planes);
    }
  }

 private:
  const ResidentTree<D>* tree_;
};

// The SoA planes in the form the kernels take, from either node shape (the
// paged ExpandedNode carries the staged block by value, the resident node
// derives it from its arena record).
template <int D>
inline const SoaBlock<D>& NodeSoa(const ExpandedNode<D>& node) {
  return node.soa;
}
template <int D>
inline SoaBlock<D> NodeSoa(const ResidentNodeRef<D>& node) {
  return node.soa();
}

// The depth-first branch-and-bound search, generic over the node backend:
// the Access policy expands pages from either the paged buffer pool or a
// compiled ResidentTree, so one traversal serves both tiers with
// bit-identical answers and visit order.
//
// kObserved selects the instrumented instantiation: stats accumulation,
// trace counting, and visit recording all compile away when the caller
// passed none of them (the steady-state serving shape), instead of costing
// a dozen predictable-but-present branches per visit. Both instantiations
// run the identical search — observation never feeds back into pruning.
template <int D, class Access, bool kObserved>
class DepthFirstKnn {
 public:
  DepthFirstKnn(const Access& access, PageId root_page,
                const Point<D>& query, const KnnOptions& options,
                QueryScratch<D>* scratch, QueryStats* stats)
      : access_(access),
        root_page_(root_page),
        query_(query),
        options_(options),
        scratch_(scratch),
        stats_(stats),
        // S1/S2 depend on MINMAXDIST bounding a *single* object, so they
        // are sound only for k = 1.
        s1_active_(options.use_s1 && options.k == 1),
        s2_active_(options.use_s2 && options.k == 1),
        // Under MINDIST ordering the ABL is consumed in ascending-MINDIST
        // order until the bound kills the rest, so entries are selected
        // lazily (min-scan per visited child) instead of fully sorted.
        // Selection order equals sorted order (ties broken by page id in
        // both), and the prune bound only ever tightens, so the moment the
        // remaining minimum exceeds it every remaining entry is dead —
        // exactly the set the sorted loop would skip. The traversal is
        // therefore unchanged for every k.
        lazy_heap_(options.ordering == AblOrdering::kMinDist &&
                   !options.force_full_sort),
        // inf * inf == inf, so an unbounded search still seeds at +inf.
        max_dist_sq_(options.max_distance * options.max_distance),
        // At epsilon = 0 this is exactly 1.0, and bound * 1.0 == bound
        // bitwise for every finite double and +-inf, so the exact path is
        // unchanged — no branch needed.
        relax_sq_(1.0 /
                  ((1.0 + options.epsilon) * (1.0 + options.epsilon))),
        visit_budget_(options.max_visits) {}

  Status Run(std::vector<Neighbor>* out, bool append) {
    scratch_->buffer.Reset(options_.k);
    scratch_->abl.clear();
    SPATIAL_RETURN_IF_ERROR(Visit(root_page_));
    scratch_->buffer.ExtractSorted(out, append);
    return Status::OK();
  }

 private:
  // Current pruning bound for *descent*: actual k-th nearest distance (S3)
  // combined with the MINMAXDIST-based estimate (S2). Branches at MINDIST
  // strictly above the bound cannot improve the result. The bound is
  // seeded at max_distance^2 (distance-bounded kNN; +inf when unbounded)
  // and the final value is relaxed by 1/(1+epsilon)^2 (approximate kNN):
  // every object inside a skipped subtree satisfies
  // dist^2 >= mindist^2 > bound_at_skip * relax_sq, and bound_at_skip
  // never goes below the final k-th answer distance, which yields the
  // per-answer contract r_i <= (1+epsilon) * t_i.
  double PruneBoundSq() const {
    double bound = max_dist_sq_;
    if (options_.use_s3) bound = std::min(bound, scratch_->buffer.WorstDistSq());
    if (s2_active_) bound = std::min(bound, estimate_sq_);
    // Cross-shard streaming: another shard's published k-th distance is a
    // valid upper bound on the global k-th distance (core/shared_bound.h).
    if (options_.shared_bound != nullptr) {
      bound = std::min(bound, options_.shared_bound->LoadSq());
    }
    return bound * relax_sq_;
  }

  // Object-level bound: the same combination *without* the epsilon
  // relaxation. Leaf objects have their exact distances in hand by the
  // time they are filtered (the kernel computes all of them in one plane
  // pass), so discarding one under the relaxed bound would give up answer
  // quality without saving any work. The relaxation therefore gates only
  // descent decisions (PruneBoundSq above); within every visited leaf the
  // buffer keeps the genuinely best objects. The (1+epsilon) contract is
  // untouched — its proof only concerns subtrees that were never entered —
  // and at epsilon = 0 the two bounds are bitwise identical.
  double ObjectBoundSq() const {
    double bound = max_dist_sq_;
    if (options_.use_s3) bound = std::min(bound, scratch_->buffer.WorstDistSq());
    if (s2_active_) bound = std::min(bound, estimate_sq_);
    if (options_.shared_bound != nullptr) {
      bound = std::min(bound, options_.shared_bound->LoadSq());
    }
    return bound;
  }

  // Publishes this search's local k-th distance to the shared bound once
  // the buffer holds k candidates; called whenever an offer tightened it.
  void PublishBound() {
    if (options_.shared_bound != nullptr && scratch_->buffer.full()) {
      options_.shared_bound->TightenSq(scratch_->buffer.WorstDistSq());
    }
  }

  Status VisitLeaf(const typename Access::Node& node) {
    // Object distances through the dispatched SoA kernel over the node's
    // planes — staged per visit by the paged backend, precomputed at
    // compile time by the resident one. Distance evaluation and the entry-
    // bound prefilter are fused into one plane pass: the kernel emits the
    // same distance array and the same ascending survivor set the separate
    // compute + FilterNotAboveSoa passes produced (every index it drops
    // would fail the in-loop test below as well, since the bound only
    // tightens from here), without re-streaming the finished array.
    const uint32_t n = node.count;
    const auto& soa = NodeSoa(node);
    double* dist =
        scratch_->min_dist.EnsureCapacity(QueryScratch<D>::DistSlots(n));
    NeighborBuffer& buffer = scratch_->buffer;
    // The bound only tightens when an offer is kept, so it is hoisted out
    // of the loop and refreshed on that event alone. Objects compete at
    // the unrelaxed bound (see ObjectBoundSq).
    double bound_sq = ObjectBoundSq();
    uint32_t* idx =
        scratch_->filter_idx.EnsureCapacity(QueryScratch<D>::DistSlots(n));
    const uint32_t kept = ks_.min_dist_filter(query_.coord.data(), soa.planes,
                                              soa.stride, soa.n, bound_sq,
                                              dist, idx);
    if constexpr (kObserved) {
      if (stats_ != nullptr) {
        stats_->objects_examined += n;
        stats_->distance_computations += n;
        stats_->pruned_leaf += n - kept;
      }
    }
    for (uint32_t j = 0; j < kept; ++j) {
      const uint32_t i = idx[j];
      // An entry already beyond the (now possibly tighter) prune bound
      // cannot enter the answer; skipping it avoids the buffer's sift work.
      if (dist[i] > bound_sq) {
        if constexpr (kObserved) {
          if (stats_ != nullptr) ++stats_->pruned_leaf;
        }
        continue;
      }
      if (buffer.Offer(node.id(i), dist[i])) {
        PublishBound();
        bound_sq = ObjectBoundSq();
      }
    }
    return Status::OK();
  }

  Status Visit(PageId node_id) {
    // Early-termination budget (kApproxKnn): once max_visits nodes have
    // been expanded the whole descent unwinds and the buffer's current
    // contents become the answer. Checked before the expand so the visit
    // that trips the budget is never charged.
    if (visit_budget_ != 0) {
      if (visits_ >= visit_budget_) {
        stopped_ = true;
        return Status::OK();
      }
      ++visits_;
    }
    typename Access::Node storage;
    const typename Access::Node* node_ptr = nullptr;
    SPATIAL_RETURN_IF_ERROR(access_.Expand(node_id, scratch_, &storage,
                                           &node_ptr,
                                           "knn: node page has bad magic"));
    const typename Access::Node& node = *node_ptr;
    if constexpr (kObserved) {
      if (stats_ != nullptr) {
        ++stats_->nodes_visited;
        if (node.is_leaf()) {
          ++stats_->leaf_nodes_visited;
        } else {
          ++stats_->internal_nodes_visited;
        }
      }
      if (obs::TraceContext* t = scratch_->trace) t->CountNode(node.level);
      if (options_.visit_trace != nullptr) {
        options_.visit_trace->push_back(node_id);
      }
    }

    const uint32_t n = node.count;
    if (n == 0) return Status::OK();

    if (node.is_leaf()) return VisitLeaf(node);

    // Internal node: the planes and the dense child-id column are ready
    // (Expand already dropped any pin), so go straight to the metrics.
    // Evaluate them for all children in one pass. MINMAXDIST is needed
    // only by S1/S2 and by the MINMAXDIST ordering; when it is, the fused
    // kernel produces both metrics from a single traversal of the planes.
    const uint64_t* child_ids = node.dense_ids();
    const auto& soa = NodeSoa(node);
    double* dmin =
        scratch_->min_dist.EnsureCapacity(QueryScratch<D>::DistSlots(n));
    uint32_t* idx =
        scratch_->filter_idx.EnsureCapacity(QueryScratch<D>::DistSlots(n));
    const bool minmax_ordering =
        options_.ordering == AblOrdering::kMinMaxDist;
    const bool need_minmax = s1_active_ || s2_active_ || minmax_ordering;
    // Three single-pass shapes, picked by who consumes what:
    //  - S1/S2 under MINDIST ordering (the k == 1 hot path) only ever reads
    //    the *minimum* MINMAXDIST, so the fused reduce kernel returns that
    //    scalar directly and the per-entry array is never materialized. The
    //    reduced min is bit-identical to std::min over the array the fused
    //    kernel would have written (min over an identical value set).
    //  - MINMAXDIST ordering needs the per-entry array for the sort, so it
    //    keeps the two-array fused kernel (+ scalar reduce when S1/S2 also
    //    want the min).
    //  - Neither active: MINDIST and the S3 bound prefilter fuse into one
    //    pass; the survivor set matches compute-then-FilterNotAboveSoa
    //    exactly (PruneBoundSq cannot tighten mid-node — no offers happen
    //    between here and the filter in the unfused form).
    double* dminmax = nullptr;
    double min_minmax = std::numeric_limits<double>::infinity();
    bool prefiltered = false;
    uint32_t kept = 0;
    if ((s1_active_ || s2_active_) && !minmax_ordering) {
      min_minmax = ks_.min_dist_min_minmax(query_.coord.data(), soa.planes,
                                           soa.stride, soa.n, dmin);
    } else if (need_minmax) {
      dminmax =
          scratch_->min_max_dist.EnsureCapacity(QueryScratch<D>::DistSlots(n));
      ks_.min_and_min_max(query_.coord.data(), soa.planes, soa.stride, soa.n,
                          dmin, dminmax);
      if (s1_active_ || s2_active_) {
        for (uint32_t i = 0; i < n; ++i) {
          min_minmax = std::min(min_minmax, dminmax[i]);
        }
      }
    } else {
      kept = ks_.min_dist_filter(query_.coord.data(), soa.planes, soa.stride,
                                 soa.n, PruneBoundSq(), dmin, idx);
      prefiltered = true;
    }
    if constexpr (kObserved) {
      if (stats_ != nullptr) {
        stats_->abl_entries_generated += n;
        stats_->distance_computations += need_minmax ? 2 * uint64_t{n} : n;
      }
    }

    // Strategy 1 filters with the vector kernel and pushes only the
    // surviving slots (`<= bound` is exactly `!(> bound)` for these
    // never-NaN distances, and the filter preserves index order, so the ABL
    // contents match the old push-all-then-compact loop bit for bit). The
    // slot's min_max_dist_sq is only read under MINMAXDIST ordering — the
    // one case where the per-entry array exists — so the reduce-only path
    // stores 0.0 there without changing any comparison.
    std::vector<AblSlot>& abl = scratch_->abl;
    AblFrame frame{&abl, abl.size()};
    const size_t base = frame.base;
    bool pushed = false;
    if (s1_active_ || s2_active_) {
      if (s1_active_) {
        // Strategy 1: some sibling is guaranteed to contain an object at
        // distance <= min_minmax; branches strictly beyond it are dead.
        const double s1_bound = min_minmax * kMinMaxSlack;
        kept = ks_.filter_not_above(dmin, n, s1_bound, idx);
        if constexpr (kObserved) {
          if (stats_ != nullptr) stats_->pruned_s1 += n - kept;
        }
        for (uint32_t j = 0; j < kept; ++j) {
          const uint32_t i = idx[j];
          abl.push_back(AblSlot{static_cast<PageId>(child_ids[i]), dmin[i],
                                dminmax != nullptr ? dminmax[i] : 0.0});
        }
        pushed = true;
      }
      if (s2_active_ && min_minmax * kMinMaxSlack < estimate_sq_) {
        // Strategy 2: tighten the NN distance estimate.
        estimate_sq_ = min_minmax * kMinMaxSlack;
        if constexpr (kObserved) {
          if (stats_ != nullptr) ++stats_->estimate_updates_s2;
        }
      }
    }
    if (!pushed) {
      // Strategy-3 prefilter: a child at MINDIST beyond the current bound
      // can never be descended — the bound only tightens from here, and
      // every consumption loop below rechecks it — so such children skip
      // the ABL entirely and are charged to pruned_s3 now instead of when
      // the consumption loop would have reached them. Same visits, same
      // counts, but the selection scan and sort touch only live slots.
      if (!prefiltered) {
        kept = ks_.filter_not_above(dmin, n, PruneBoundSq(), idx);
      }
      if constexpr (kObserved) {
        if (stats_ != nullptr) stats_->pruned_s3 += n - kept;
      }
      for (uint32_t j = 0; j < kept; ++j) {
        const uint32_t i = idx[j];
        abl.push_back(AblSlot{static_cast<PageId>(child_ids[i]), dmin[i],
                              dminmax != nullptr ? dminmax[i] : 0.0});
      }
    }
    const size_t m = abl.size() - base;
    // The surviving children are about to be visited in MINDIST order;
    // start pulling their arena records into cache so the selection scan
    // below overlaps the memory latency. Compiles away for paged access.
    for (size_t i = 0; i < m; ++i) access_.Prefetch(abl[base + i].child);

    if (lazy_heap_) {
      // Consume children in MINDIST order by scanning the frame for the
      // remaining minimum each round, visiting until that minimum exceeds
      // the bound — at that point *every* remaining child exceeds it.
      // Selection order equals heap-pop order equals sorted order (ties
      // broken by page id in all three, and the scan compares the whole
      // remaining set, so its result is independent of slot order), but at
      // node fan-outs the scan beats a heap: the bound usually kills the
      // descent after a handful of children, and the scan writes nothing,
      // where make_heap shuffles 24-byte slots even for children that are
      // never visited.
      size_t live = m;
      while (live > 0) {
        // Recompute the frame pointer each round: recursion below may grow
        // (and reallocate) the arena past this frame.
        AblSlot* slots = abl.data() + base;
        size_t best = 0;
        for (size_t i = 1; i < live; ++i) {
          if (MinDistLess(slots[i], slots[best])) best = i;
        }
        const AblSlot slot = slots[best];
        if (slot.min_dist_sq > PruneBoundSq()) {
          if constexpr (kObserved) {
            if (stats_ != nullptr) {
              stats_->pruned_s3 += static_cast<uint64_t>(live);
            }
          }
          break;
        }
        slots[best] = slots[--live];  // unordered remove; the set survives
        SPATIAL_RETURN_IF_ERROR(Visit(slot.child));
        if (stopped_) break;
      }
      return Status::OK();
    }

    // The comparators are wrapped in lambdas so std::sort instantiates on a
    // unique inlinable closure type; passing the functions themselves would
    // make every comparison an indirect call through a function pointer.
    switch (options_.ordering) {
      case AblOrdering::kMinDist:
        std::sort(abl.begin() + base, abl.end(),
                  [](const AblSlot& a, const AblSlot& b) {
                    return MinDistLess(a, b);
                  });
        break;
      case AblOrdering::kMinMaxDist:
        std::sort(abl.begin() + base, abl.end(),
                  [](const AblSlot& a, const AblSlot& b) {
                    return MinMaxDistLess(a, b);
                  });
        break;
      case AblOrdering::kNone:
        break;
    }

    // Recurse in ABL order, re-testing the bound after every return
    // (strategy 3 / upward pruning).
    for (size_t i = 0; i < m; ++i) {
      const AblSlot slot = abl[base + i];  // copy: recursion moves the arena
      if (slot.min_dist_sq > PruneBoundSq()) {
        if constexpr (kObserved) {
          if (stats_ != nullptr) ++stats_->pruned_s3;
        }
        continue;
      }
      SPATIAL_RETURN_IF_ERROR(Visit(slot.child));
      if (stopped_) break;
    }
    return Status::OK();
  }

  const Access access_;
  const PageId root_page_;
  const Point<D> query_;
  const KnnOptions options_;
  QueryScratch<D>* scratch_;
  QueryStats* stats_;
  // The dispatched kernel set, resolved once per search: the per-call
  // wrappers in metrics_simd.h re-read a function-local static behind an
  // init guard, which a traversal making several kernel calls per visit
  // has no reason to pay.
  const SoaKernelSet& ks_ = SoaKernels<D>();
  const bool s1_active_;
  const bool s2_active_;
  const bool lazy_heap_;
  const double max_dist_sq_;
  const double relax_sq_;
  const uint64_t visit_budget_;
  uint64_t visits_ = 0;
  bool stopped_ = false;
  double estimate_sq_ = std::numeric_limits<double>::infinity();
};

// Global best-first traversal for the approximate search (an active
// epsilon and/or visit budget): nodes are expanded in ascending-MINDIST
// order off one priority queue instead of depth-first, because both knobs
// need the *global* order to bite:
//
//  - The epsilon-relaxed cutoff is final the moment the queue's minimum
//    key exceeds bound/(1+eps)^2 — every unexpanded node is at least that
//    far, so the traversal ends without the verification tail the
//    depth-first shape pays (DFS must keep visiting siblings to prove the
//    bound; the global order proves it by construction).
//  - A visit budget spent here buys the globally most promising nodes.
//    Spent on a DFS it buys a depth-first prefix of the first subtree,
//    which is why budgeted DFS recall collapses (measured in E21).
//
// Exact kNN keeps the paper's depth-first engine untouched; this path is
// entered only when an approximation knob is active, so zero-knob
// requests remain bit-identical to the exact search by running the same
// code. S1/S2 are MINMAXDIST descent heuristics of the DFS shape (k = 1
// only) and are not consulted here; S3, max_distance, and the shared
// shard bound compose exactly as in the DFS engine — objects compete at
// the unrelaxed bound, descent and termination use the relaxed one, so
// the (1+epsilon) per-rank contract argument carries over unchanged.
template <int D, class Access, bool kObserved>
class BestFirstApproxKnn {
 public:
  BestFirstApproxKnn(const Access& access, PageId root_page,
                     const Point<D>& query, const KnnOptions& options,
                     QueryScratch<D>* scratch, QueryStats* stats)
      : access_(access),
        root_page_(root_page),
        query_(query),
        options_(options),
        scratch_(scratch),
        stats_(stats),
        max_dist_sq_(options.max_distance * options.max_distance),
        relax_sq_(1.0 /
                  ((1.0 + options.epsilon) * (1.0 + options.epsilon))),
        visit_budget_(options.max_visits) {}

  Status Run(std::vector<Neighbor>* out, bool append) {
    scratch_->buffer.Reset(options_.k);
    std::vector<KnnFrameHeapItem>& heap = scratch_->knn_heap;
    std::vector<KnnChildSlot>& kids = scratch_->knn_children;
    heap.clear();
    kids.clear();
    uint64_t visits = 0;
    // Direct-descent slot: an expanded node's best child usually beats the
    // current heap minimum (keys only grow downward), so it is handed to
    // the next iteration here instead of round-tripping through the heap.
    // Best-first order is preserved exactly — the slot is only armed when
    // its key is <= the heap minimum, so it *is* the global minimum (and
    // stays so: everything pushed while it is armed keys at or above it
    // by MBR containment).
    bool has_next = true;
    double next_key = 0.0;
    PageId next_node = root_page_;
    while (true) {
      if (visit_budget_ != 0 && visits >= visit_budget_) break;
      double key;
      PageId node_id;
      if (has_next) {
        key = next_key;
        node_id = next_node;
        has_next = false;
        // The key is a lower bound on every remaining subtree, so one
        // relaxed-bound comparison terminates the whole search.
        if (key > PruneBoundSq()) break;
      } else if (!heap.empty()) {
        // A frame's key is the exact minimum over its live children, so
        // the same single comparison terminates before the frame is even
        // resolved.
        const KnnFrameHeapItem top = heap.front();
        if (top.dist_sq > PruneBoundSq()) break;
        std::pop_heap(heap.begin(), heap.end());
        heap.pop_back();
        // Resolve the frame: one scan finds the minimum child (the node to
        // visit) and the runner-up key, which re-keys the successor frame.
        KnnChildSlot* slot = kids.data();
        uint32_t m1 = top.pos;
        double min2 = std::numeric_limits<double>::infinity();
        for (uint32_t i = top.pos + 1; i < top.end; ++i) {
          if (slot[i].dist_sq < slot[m1].dist_sq ||
              (slot[i].dist_sq == slot[m1].dist_sq &&
               slot[i].page < slot[m1].page)) {
            min2 = slot[m1].dist_sq;
            m1 = i;
          } else if (slot[i].dist_sq < min2) {
            min2 = slot[i].dist_sq;
          }
        }
        key = slot[m1].dist_sq;
        node_id = static_cast<PageId>(slot[m1].page);
        if (top.pos + 1 < top.end) {
          std::swap(slot[m1], slot[top.pos]);
          heap.push_back(KnnFrameHeapItem{min2, top.pos + 1, top.end});
          std::push_heap(heap.begin(), heap.end());
        }
      } else {
        break;
      }
      ++visits;
      SPATIAL_RETURN_IF_ERROR(
          Visit(node_id, &has_next, &next_key, &next_node));
    }
    scratch_->buffer.ExtractSorted(out, append);
    return Status::OK();
  }

 private:
  // Same bound pair as the DFS engine (minus S2, which never arms here):
  // descent and termination at the relaxed bound, object competition at
  // the exact one.
  double PruneBoundSq() const {
    double bound = max_dist_sq_;
    if (options_.use_s3) bound = std::min(bound, scratch_->buffer.WorstDistSq());
    if (options_.shared_bound != nullptr) {
      bound = std::min(bound, options_.shared_bound->LoadSq());
    }
    return bound * relax_sq_;
  }
  double ObjectBoundSq() const {
    double bound = max_dist_sq_;
    if (options_.use_s3) bound = std::min(bound, scratch_->buffer.WorstDistSq());
    if (options_.shared_bound != nullptr) {
      bound = std::min(bound, options_.shared_bound->LoadSq());
    }
    return bound;
  }

  void PublishBound() {
    if (options_.shared_bound != nullptr && scratch_->buffer.full()) {
      options_.shared_bound->TightenSq(scratch_->buffer.WorstDistSq());
    }
  }

  Status Visit(PageId node_id, bool* has_next, double* next_key,
               PageId* next_node) {
    typename Access::Node storage;
    const typename Access::Node* node_ptr = nullptr;
    SPATIAL_RETURN_IF_ERROR(access_.Expand(node_id, scratch_, &storage,
                                           &node_ptr,
                                           "knn: node page has bad magic"));
    const typename Access::Node& node = *node_ptr;
    if constexpr (kObserved) {
      if (stats_ != nullptr) {
        ++stats_->nodes_visited;
        if (node.is_leaf()) {
          ++stats_->leaf_nodes_visited;
        } else {
          ++stats_->internal_nodes_visited;
        }
      }
      if (obs::TraceContext* t = scratch_->trace) t->CountNode(node.level);
      if (options_.visit_trace != nullptr) {
        options_.visit_trace->push_back(node_id);
      }
    }

    const uint32_t n = node.count;
    if (n == 0) return Status::OK();
    const auto& soa = NodeSoa(node);
    double* dist =
        scratch_->min_dist.EnsureCapacity(QueryScratch<D>::DistSlots(n));
    uint32_t* idx =
        scratch_->filter_idx.EnsureCapacity(QueryScratch<D>::DistSlots(n));

    if (node.is_leaf()) {
      // Identical to the DFS leaf pass: fused distance + exact-bound
      // prefilter, offers at the unrelaxed bound.
      NeighborBuffer& buffer = scratch_->buffer;
      double bound_sq = ObjectBoundSq();
      const uint32_t kept = ks_.min_dist_filter(query_.coord.data(),
                                                soa.planes, soa.stride, soa.n,
                                                bound_sq, dist, idx);
      if constexpr (kObserved) {
        if (stats_ != nullptr) {
          stats_->objects_examined += n;
          stats_->distance_computations += n;
          stats_->pruned_leaf += n - kept;
        }
      }
      for (uint32_t j = 0; j < kept; ++j) {
        const uint32_t i = idx[j];
        if (dist[i] > bound_sq) {
          if constexpr (kObserved) {
            if (stats_ != nullptr) ++stats_->pruned_leaf;
          }
          continue;
        }
        if (buffer.Offer(node.id(i), dist[i])) {
          PublishBound();
          bound_sq = ObjectBoundSq();
        }
      }
      return Status::OK();
    }

    // Internal node: children at MINDIST within the relaxed bound join the
    // global queue; the rest are pruned now (they could only be re-tested
    // against an even tighter bound later).
    const uint64_t* child_ids = node.dense_ids();
    const uint32_t kept = ks_.min_dist_filter(query_.coord.data(), soa.planes,
                                              soa.stride, soa.n,
                                              PruneBoundSq(), dist, idx);
    if constexpr (kObserved) {
      if (stats_ != nullptr) {
        stats_->abl_entries_generated += n;
        stats_->distance_computations += n;
        stats_->pruned_s3 += n - kept;
      }
    }
    if (kept == 0) return Status::OK();
    // The best child goes to the direct-descent slot when it is already at
    // or below the heap minimum (tie goes to descent — equal keys may be
    // expanded in either order without affecting any bound); its siblings
    // become one arena frame behind a single heap entry keyed by their
    // minimum (lazy sibling expansion — see KnnFrameHeapItem).
    uint32_t best = idx[0];
    for (uint32_t j = 1; j < kept; ++j) {
      const uint32_t i = idx[j];
      if (dist[i] < dist[best] ||
          (dist[i] == dist[best] && child_ids[i] < child_ids[best])) {
        best = i;
      }
    }
    std::vector<KnnFrameHeapItem>& heap = scratch_->knn_heap;
    std::vector<KnnChildSlot>& kids = scratch_->knn_children;
    const bool descend = heap.empty() || !(heap.front().dist_sq < dist[best]);
    const uint32_t start = static_cast<uint32_t>(kids.size());
    double frame_min = std::numeric_limits<double>::infinity();
    for (uint32_t j = 0; j < kept; ++j) {
      const uint32_t i = idx[j];
      if (descend && i == best) continue;
      if (dist[i] < frame_min) frame_min = dist[i];
      kids.push_back(KnnChildSlot{dist[i], child_ids[i]});
    }
    if (kids.size() > start) {
      heap.push_back(KnnFrameHeapItem{frame_min, start,
                                      static_cast<uint32_t>(kids.size())});
      std::push_heap(heap.begin(), heap.end());
    }
    if (descend) {
      *has_next = true;
      *next_key = dist[best];
      *next_node = static_cast<PageId>(child_ids[best]);
    }
    return Status::OK();
  }

  const Access access_;
  const PageId root_page_;
  const Point<D> query_;
  const KnnOptions options_;
  QueryScratch<D>* scratch_;
  QueryStats* stats_;
  const SoaKernelSet& ks_ = SoaKernels<D>();
  const double max_dist_sq_;
  const double relax_sq_;
  const uint64_t visit_budget_;
};

template <int D, class Access>
Status KnnSearchIntoImpl(const Access& access, PageId root_page, bool empty,
                         const Point<D>& query, const KnnOptions& options,
                         QueryScratch<D>* scratch, std::vector<Neighbor>* out,
                         QueryStats* stats) {
  SPATIAL_CHECK(scratch != nullptr && out != nullptr);
  SPATIAL_RETURN_IF_ERROR(options.Validate());
  out->clear();
  if (empty) return Status::OK();
  // An active approximation knob selects the best-first engine; zero-knob
  // searches take the paper's depth-first engine, bit for bit.
  const bool approx = options.epsilon > 0.0 || options.max_visits != 0;
  if (stats == nullptr && options.visit_trace == nullptr &&
      scratch->trace == nullptr) {
    if (approx) {
      BestFirstApproxKnn<D, Access, /*kObserved=*/false> search(
          access, root_page, query, options, scratch, stats);
      return search.Run(out, /*append=*/false);
    }
    DepthFirstKnn<D, Access, /*kObserved=*/false> search(
        access, root_page, query, options, scratch, stats);
    return search.Run(out, /*append=*/false);
  }
  if (approx) {
    BestFirstApproxKnn<D, Access, /*kObserved=*/true> search(
        access, root_page, query, options, scratch, stats);
    return search.Run(out, /*append=*/false);
  }
  DepthFirstKnn<D, Access, /*kObserved=*/true> search(access, root_page, query,
                                                      options, scratch, stats);
  return search.Run(out, /*append=*/false);
}

template <int D, class Access>
Status KnnSearchBatchImpl(const Access& access, PageId root_page, bool empty,
                          const Point<D>* queries, size_t num_queries,
                          const KnnOptions& options, QueryScratch<D>* scratch,
                          BatchKnnResult* out) {
  SPATIAL_CHECK(scratch != nullptr && out != nullptr);
  SPATIAL_RETURN_IF_ERROR(options.Validate());
  out->Clear();
  out->offsets.push_back(0);
  for (size_t q = 0; q < num_queries; ++q) {
    out->stats.emplace_back();
    if (!empty) {
      DepthFirstKnn<D, Access, /*kObserved=*/true> search(
          access, root_page, queries[q], options, scratch,
          &out->stats.back());
      SPATIAL_RETURN_IF_ERROR(search.Run(&out->neighbors, /*append=*/true));
    }
    out->offsets.push_back(static_cast<uint32_t>(out->neighbors.size()));
  }
  return Status::OK();
}

}  // namespace

template <int D>
Status KnnSearchInto(const RTree<D>& tree, const Point<D>& query,
                     const KnnOptions& options, QueryScratch<D>* scratch,
                     std::vector<Neighbor>* out, QueryStats* stats) {
  return KnnSearchIntoImpl<D>(PagedAccess<D>(tree), tree.root_page(),
                              tree.empty(), query, options, scratch, out,
                              stats);
}

template <int D>
Status KnnSearchInto(const ResidentTree<D>& tree, const Point<D>& query,
                     const KnnOptions& options, QueryScratch<D>* scratch,
                     std::vector<Neighbor>* out, QueryStats* stats) {
  return KnnSearchIntoImpl<D>(ResidentAccess<D>(tree), tree.root_page(),
                              tree.empty(), query, options, scratch, out,
                              stats);
}

template <int D>
Result<std::vector<Neighbor>> KnnSearch(const RTree<D>& tree,
                                        const Point<D>& query,
                                        const KnnOptions& options,
                                        QueryStats* stats) {
  QueryScratch<D> scratch;
  std::vector<Neighbor> out;
  SPATIAL_RETURN_IF_ERROR(
      KnnSearchInto(tree, query, options, &scratch, &out, stats));
  return out;
}

template <int D>
Status KnnSearchBatch(const RTree<D>& tree, const Point<D>* queries,
                      size_t num_queries, const KnnOptions& options,
                      QueryScratch<D>* scratch, BatchKnnResult* out) {
  return KnnSearchBatchImpl<D>(PagedAccess<D>(tree), tree.root_page(),
                               tree.empty(), queries, num_queries, options,
                               scratch, out);
}

template <int D>
Status KnnSearchBatch(const ResidentTree<D>& tree, const Point<D>* queries,
                      size_t num_queries, const KnnOptions& options,
                      QueryScratch<D>* scratch, BatchKnnResult* out) {
  return KnnSearchBatchImpl<D>(ResidentAccess<D>(tree), tree.root_page(),
                               tree.empty(), queries, num_queries, options,
                               scratch, out);
}

template Result<std::vector<Neighbor>> KnnSearch<2>(const RTree<2>&,
                                                    const Point<2>&,
                                                    const KnnOptions&,
                                                    QueryStats*);
template Result<std::vector<Neighbor>> KnnSearch<3>(const RTree<3>&,
                                                    const Point<3>&,
                                                    const KnnOptions&,
                                                    QueryStats*);
template Result<std::vector<Neighbor>> KnnSearch<4>(const RTree<4>&,
                                                    const Point<4>&,
                                                    const KnnOptions&,
                                                    QueryStats*);

template Status KnnSearchInto<2>(const RTree<2>&, const Point<2>&,
                                 const KnnOptions&, QueryScratch<2>*,
                                 std::vector<Neighbor>*, QueryStats*);
template Status KnnSearchInto<3>(const RTree<3>&, const Point<3>&,
                                 const KnnOptions&, QueryScratch<3>*,
                                 std::vector<Neighbor>*, QueryStats*);
template Status KnnSearchInto<4>(const RTree<4>&, const Point<4>&,
                                 const KnnOptions&, QueryScratch<4>*,
                                 std::vector<Neighbor>*, QueryStats*);

template Status KnnSearchInto<2>(const ResidentTree<2>&, const Point<2>&,
                                 const KnnOptions&, QueryScratch<2>*,
                                 std::vector<Neighbor>*, QueryStats*);
template Status KnnSearchInto<3>(const ResidentTree<3>&, const Point<3>&,
                                 const KnnOptions&, QueryScratch<3>*,
                                 std::vector<Neighbor>*, QueryStats*);
template Status KnnSearchInto<4>(const ResidentTree<4>&, const Point<4>&,
                                 const KnnOptions&, QueryScratch<4>*,
                                 std::vector<Neighbor>*, QueryStats*);

template Status KnnSearchBatch<2>(const RTree<2>&, const Point<2>*, size_t,
                                  const KnnOptions&, QueryScratch<2>*,
                                  BatchKnnResult*);
template Status KnnSearchBatch<3>(const RTree<3>&, const Point<3>*, size_t,
                                  const KnnOptions&, QueryScratch<3>*,
                                  BatchKnnResult*);
template Status KnnSearchBatch<4>(const RTree<4>&, const Point<4>*, size_t,
                                  const KnnOptions&, QueryScratch<4>*,
                                  BatchKnnResult*);

template Status KnnSearchBatch<2>(const ResidentTree<2>&, const Point<2>*,
                                  size_t, const KnnOptions&, QueryScratch<2>*,
                                  BatchKnnResult*);
template Status KnnSearchBatch<3>(const ResidentTree<3>&, const Point<3>*,
                                  size_t, const KnnOptions&, QueryScratch<3>*,
                                  BatchKnnResult*);
template Status KnnSearchBatch<4>(const ResidentTree<4>&, const Point<4>*,
                                  size_t, const KnnOptions&, QueryScratch<4>*,
                                  BatchKnnResult*);

}  // namespace spatial
