#ifndef SPATIAL_CORE_SKYLINE_H_
#define SPATIAL_CORE_SKYLINE_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/result.h"
#include "core/query_stats.h"
#include "core/scratch.h"
#include "geom/metrics.h"
#include "geom/point.h"
#include "geom/rect.h"
#include "rtree/entry.h"
#include "rtree/rtree.h"
#include "storage/resident_tree.h"

namespace spatial {

// Spatial nearest-neighbor skyline (arXiv:1112.2336): given m source
// points, an object o is in the skyline iff no other object o' has
// dist(o', s_i) <= dist(o, s_i) for every source s_i with at least one
// strict inequality. The result is the set of "best compromise" objects
// between the sources (m = 1 degenerates to the nearest object plus its
// distance ties).
//
// Implementation: incremental distance browsing ordered by the *sum* of
// per-source squared MINDISTs plus a dominance filter. Because dominance
// implies a strictly smaller sum, objects are popped after every object
// that could dominate them, so testing each popped object against the
// current skyline set is exact; a node is pruned iff some skyline member
// dominates the node's per-source MINDIST vector (then it dominates every
// object inside). Exact for all combinations, both backends, D = 2..4.

// True iff distance vector a (n entries) dominates b: a[i] <= b[i] for
// all i with at least one strict. Shared by the core filter, the router's
// cross-shard re-merge, and the brute-force test reference.
inline bool SkylineDominates(const double* a, const double* b, size_t n) {
  bool strict = false;
  for (size_t i = 0; i < n; ++i) {
    if (a[i] > b[i]) return false;
    if (a[i] < b[i]) strict = true;
  }
  return strict;
}

// Canonical per-source squared-distance vector of a box, in source order
// with the scalar MINDIST expression — the batch kernels are bit-identical
// to it, so core, router, and reference all derive the same doubles (the
// cross-shard byte-identity of skyline answers rests on this).
template <int D>
inline void SkylineDistVector(const Point<D>* sources, size_t num_sources,
                              const Rect<D>& mbr, double* out) {
  for (size_t i = 0; i < num_sources; ++i) {
    out[i] = MinDistSq(sources[i], mbr);
  }
}

// The browse / output ordering key: sum of the per-source squared
// distances, accumulated in source order.
template <int D>
inline double SkylineDistSum(const Point<D>* sources, size_t num_sources,
                             const Rect<D>& mbr) {
  double sum = 0.0;
  for (size_t i = 0; i < num_sources; ++i) {
    sum += MinDistSq(sources[i], mbr);
  }
  return sum;
}

// Computes the NN skyline of `tree` for the given sources. `out` (cleared
// first) receives the skyline objects with their MBRs, sorted by ascending
// (distance-sum, id). Zero steady-state allocations when `scratch` and
// `out` are reused across queries. `stats` may be null.
template <int D>
Status NnSkylineSearch(const RTree<D>& tree, const Point<D>* sources,
                       size_t num_sources, QueryScratch<D>* scratch,
                       std::vector<Entry<D>>* out, QueryStats* stats);
template <int D>
Status NnSkylineSearch(const ResidentTree<D>& tree, const Point<D>* sources,
                       size_t num_sources, QueryScratch<D>* scratch,
                       std::vector<Entry<D>>* out, QueryStats* stats);

extern template Status NnSkylineSearch<2>(const RTree<2>&, const Point<2>*,
                                          size_t, QueryScratch<2>*,
                                          std::vector<Entry<2>>*,
                                          QueryStats*);
extern template Status NnSkylineSearch<3>(const RTree<3>&, const Point<3>*,
                                          size_t, QueryScratch<3>*,
                                          std::vector<Entry<3>>*,
                                          QueryStats*);
extern template Status NnSkylineSearch<4>(const RTree<4>&, const Point<4>*,
                                          size_t, QueryScratch<4>*,
                                          std::vector<Entry<4>>*,
                                          QueryStats*);
extern template Status NnSkylineSearch<2>(const ResidentTree<2>&,
                                          const Point<2>*, size_t,
                                          QueryScratch<2>*,
                                          std::vector<Entry<2>>*,
                                          QueryStats*);
extern template Status NnSkylineSearch<3>(const ResidentTree<3>&,
                                          const Point<3>*, size_t,
                                          QueryScratch<3>*,
                                          std::vector<Entry<3>>*,
                                          QueryStats*);
extern template Status NnSkylineSearch<4>(const ResidentTree<4>&,
                                          const Point<4>*, size_t,
                                          QueryScratch<4>*,
                                          std::vector<Entry<4>>*,
                                          QueryStats*);

}  // namespace spatial

#endif  // SPATIAL_CORE_SKYLINE_H_
