#ifndef SPATIAL_CORE_CLOSEST_PAIRS_H_
#define SPATIAL_CORE_CLOSEST_PAIRS_H_

#include <cstdint>
#include <vector>

#include "common/result.h"
#include "core/query_stats.h"
#include "rtree/rtree.h"

namespace spatial {

// One answer of a k-closest-pairs query.
struct ClosestPair {
  uint64_t outer_id = 0;
  uint64_t inner_id = 0;
  double dist_sq = 0.0;
};

// k-closest-pairs distance join (incremental best-first over node/object
// pairs, after Hjaltason & Samet): finds the k pairs (a, b), a from `outer`,
// b from `inner`, minimizing the MBR distance between them. For point
// objects this is the exact point-pair distance. Results are ordered by
// ascending distance.
//
// The k-NN search's "expand the most promising MBR first" idea lifted from
// point-vs-tree to tree-vs-tree — the second classic descendant of the
// SIGMOD'95 framework next to the intersection join.
template <int D>
Result<std::vector<ClosestPair>> ClosestPairs(const RTree<D>& outer,
                                              const RTree<D>& inner,
                                              uint32_t k, QueryStats* stats);

extern template Result<std::vector<ClosestPair>> ClosestPairs<2>(
    const RTree<2>&, const RTree<2>&, uint32_t, QueryStats*);
extern template Result<std::vector<ClosestPair>> ClosestPairs<3>(
    const RTree<3>&, const RTree<3>&, uint32_t, QueryStats*);

}  // namespace spatial

#endif  // SPATIAL_CORE_CLOSEST_PAIRS_H_
