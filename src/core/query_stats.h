#ifndef SPATIAL_CORE_QUERY_STATS_H_
#define SPATIAL_CORE_QUERY_STATS_H_

#include <cstdint>

namespace spatial {

// Per-query instrumentation. `nodes_visited` equals the number of R-tree
// pages fetched by the query — the headline metric of the SIGMOD'95
// evaluation. The prune counters attribute discarded branches to the
// paper's three pruning strategies.
struct QueryStats {
  uint64_t nodes_visited = 0;
  uint64_t leaf_nodes_visited = 0;
  uint64_t internal_nodes_visited = 0;

  uint64_t abl_entries_generated = 0;  // child entries considered
  uint64_t pruned_s1 = 0;              // MINDIST > min sibling MINMAXDIST
  uint64_t estimate_updates_s2 = 0;    // MINMAXDIST lowered the NN estimate
  uint64_t pruned_s3 = 0;              // MINDIST > k-th nearest (or estimate)
  uint64_t pruned_leaf = 0;            // leaf entries skipped before Offer

  uint64_t objects_examined = 0;
  uint64_t distance_computations = 0;

  uint64_t heap_pushes = 0;  // best-first / incremental queue traffic
  uint64_t heap_pops = 0;

  void Reset() { *this = QueryStats(); }

  void Add(const QueryStats& other) {
    nodes_visited += other.nodes_visited;
    leaf_nodes_visited += other.leaf_nodes_visited;
    internal_nodes_visited += other.internal_nodes_visited;
    abl_entries_generated += other.abl_entries_generated;
    pruned_s1 += other.pruned_s1;
    estimate_updates_s2 += other.estimate_updates_s2;
    pruned_s3 += other.pruned_s3;
    pruned_leaf += other.pruned_leaf;
    objects_examined += other.objects_examined;
    distance_computations += other.distance_computations;
    heap_pushes += other.heap_pushes;
    heap_pops += other.heap_pops;
  }
};

}  // namespace spatial

#endif  // SPATIAL_CORE_QUERY_STATS_H_
