#include "core/farthest.h"

#include <algorithm>
#include <limits>

#include "common/macros.h"
#include "geom/metrics.h"
#include "rtree/node.h"

namespace spatial {
namespace {

// Bounded min-heap keeping the k largest distances seen so far (the mirror
// of NeighborBuffer). The pruning bound is the k-th largest distance:
// -infinity until the buffer holds k candidates.
class FarthestBuffer {
 public:
  explicit FarthestBuffer(uint32_t k) : k_(k) { SPATIAL_CHECK(k >= 1); }

  bool full() const { return heap_.size() >= k_; }

  double BoundDistSq() const {
    return full() ? heap_.front().dist_sq
                  : -std::numeric_limits<double>::infinity();
  }

  void Offer(uint64_t id, double dist_sq) {
    if (!full()) {
      heap_.push_back(Neighbor{id, dist_sq});
      std::push_heap(heap_.begin(), heap_.end(), Greater);
      return;
    }
    if (dist_sq <= heap_.front().dist_sq) return;
    std::pop_heap(heap_.begin(), heap_.end(), Greater);
    heap_.back() = Neighbor{id, dist_sq};
    std::push_heap(heap_.begin(), heap_.end(), Greater);
  }

  // Descending by distance.
  std::vector<Neighbor> TakeSorted() {
    std::sort_heap(heap_.begin(), heap_.end(), Greater);
    return std::move(heap_);
  }

 private:
  static bool Greater(const Neighbor& a, const Neighbor& b) {
    return a.dist_sq > b.dist_sq;
  }

  uint32_t k_;
  std::vector<Neighbor> heap_;  // min-heap on dist_sq
};

template <int D>
class FarthestTraversal {
 public:
  FarthestTraversal(const RTree<D>& tree, const Point<D>& query, uint32_t k,
                    QueryStats* stats)
      : tree_(tree), query_(query), stats_(stats), buffer_(k) {}

  Result<std::vector<Neighbor>> Run() {
    SPATIAL_RETURN_IF_ERROR(Visit(tree_.root_page()));
    return buffer_.TakeSorted();
  }

 private:
  struct Slot {
    PageId child;
    double max_dist_sq;
  };

  Status Visit(PageId node_id) {
    SPATIAL_ASSIGN_OR_RETURN(PageHandle handle, tree_.pool()->Fetch(node_id));
    NodeView<D> view(handle.data(), tree_.pool()->page_size());
    if (!view.has_valid_magic()) {
      return Status::Corruption("farthest: node page has bad magic");
    }
    if (stats_ != nullptr) {
      ++stats_->nodes_visited;
      if (view.is_leaf()) {
        ++stats_->leaf_nodes_visited;
      } else {
        ++stats_->internal_nodes_visited;
      }
    }
    if (view.is_leaf()) {
      const uint32_t n = view.count();
      for (uint32_t i = 0; i < n; ++i) {
        const Entry<D> e = view.entry(i);
        // Distance to an extended object's farthest point; exact distance
        // for point objects.
        buffer_.Offer(e.id, MaxDistSq(query_, e.mbr));
        if (stats_ != nullptr) {
          ++stats_->objects_examined;
          ++stats_->distance_computations;
        }
      }
      return Status::OK();
    }
    std::vector<Slot> abl;
    abl.reserve(view.count());
    const uint32_t n = view.count();
    for (uint32_t i = 0; i < n; ++i) {
      const Entry<D> e = view.entry(i);
      abl.push_back(Slot{static_cast<PageId>(e.id), MaxDistSq(query_, e.mbr)});
      if (stats_ != nullptr) {
        ++stats_->abl_entries_generated;
        ++stats_->distance_computations;
      }
    }
    handle.Release();
    std::sort(abl.begin(), abl.end(), [](const Slot& a, const Slot& b) {
      return a.max_dist_sq > b.max_dist_sq;
    });
    for (const Slot& slot : abl) {
      // MAXDIST is an upper bound on every object in the subtree: nothing
      // inside can beat the current k-th farthest if the bound cannot.
      if (slot.max_dist_sq < buffer_.BoundDistSq()) {
        if (stats_ != nullptr) ++stats_->pruned_s3;
        continue;
      }
      SPATIAL_RETURN_IF_ERROR(Visit(slot.child));
    }
    return Status::OK();
  }

  const RTree<D>& tree_;
  const Point<D> query_;
  QueryStats* stats_;
  FarthestBuffer buffer_;
};

}  // namespace

template <int D>
Result<std::vector<Neighbor>> FarthestSearch(const RTree<D>& tree,
                                             const Point<D>& query,
                                             uint32_t k, QueryStats* stats) {
  if (k < 1) return Status::InvalidArgument("k must be >= 1");
  if (tree.empty()) return std::vector<Neighbor>{};
  FarthestTraversal<D> traversal(tree, query, k, stats);
  return traversal.Run();
}

template Result<std::vector<Neighbor>> FarthestSearch<2>(const RTree<2>&,
                                                         const Point<2>&,
                                                         uint32_t,
                                                         QueryStats*);
template Result<std::vector<Neighbor>> FarthestSearch<3>(const RTree<3>&,
                                                         const Point<3>&,
                                                         uint32_t,
                                                         QueryStats*);

}  // namespace spatial
