#ifndef SPATIAL_STORAGE_FILE_DISK_MANAGER_H_
#define SPATIAL_STORAGE_FILE_DISK_MANAGER_H_

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "storage/disk.h"

namespace spatial {

// Page storage backed by a real file, giving indexes durability across
// processes. File layout:
//
//   page 0..N-1 : raw page images, page_size bytes each
//
// Allocation metadata (the free list) is kept in memory and rebuilt as
// "no free pages" on reopen; freed pages of a previous session are leaked
// in the file but remain readable, which is sound (the tree never points
// at them) if slightly wasteful. A production system would persist the
// free list in a superblock; for this reproduction the simple scheme keeps
// the format trivial and the recovery story obvious.
//
// Not thread-safe.
class FileDiskManager final : public Disk {
 public:
  // Creates a new file (truncating any existing one).
  static Result<FileDiskManager> Create(const std::string& path,
                                        uint32_t page_size);

  // Opens an existing file; the page count is derived from the file size,
  // which must be a multiple of page_size.
  static Result<FileDiskManager> Open(const std::string& path,
                                      uint32_t page_size);

  FileDiskManager(FileDiskManager&& other) noexcept;
  FileDiskManager& operator=(FileDiskManager&& other) noexcept;
  FileDiskManager(const FileDiskManager&) = delete;
  FileDiskManager& operator=(const FileDiskManager&) = delete;
  ~FileDiskManager() override;

  uint32_t page_size() const override { return page_size_; }
  PageId AllocatePage() override;
  Status FreePage(PageId id) override;
  Status ReadPage(PageId id, char* out) override;
  Status WritePage(PageId id, const char* in) override;
  uint64_t live_pages() const override;
  const IoStats& stats() const override { return stats_; }
  void ResetStats() override { stats_.Reset(); }

  // Flushes the underlying file's user-space buffers.
  Status Sync();

  const std::string& path() const { return path_; }

 private:
  FileDiskManager(std::string path, uint32_t page_size, std::FILE* file,
                  uint32_t num_pages);

  std::string path_;
  uint32_t page_size_ = 0;
  std::FILE* file_ = nullptr;
  uint32_t num_pages_ = 0;
  std::vector<bool> freed_;  // indexed by PageId
  std::vector<PageId> free_list_;
  IoStats stats_;
};

}  // namespace spatial

#endif  // SPATIAL_STORAGE_FILE_DISK_MANAGER_H_
