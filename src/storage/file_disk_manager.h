#ifndef SPATIAL_STORAGE_FILE_DISK_MANAGER_H_
#define SPATIAL_STORAGE_FILE_DISK_MANAGER_H_

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "storage/disk.h"

namespace spatial {

// Page storage backed by a real file, giving indexes durability across
// processes. File layout:
//
//   page 0..N-1 : raw page images, page_size bytes each
//
// Allocation metadata (the free list) is kept in memory and rebuilt as
// "no free pages" on reopen, unless the owner re-seeds it via
// AdoptFreeList (the serving superblock persists the list at each
// checkpoint). Without adoption, freed pages of a previous session are
// leaked in the file but remain readable, which is sound (the tree never
// points at them) if slightly wasteful.
//
// Thread-safety contract:
//   * AllocatePage / FreePage / WritePage / ReadPage / Sync — single
//     threaded, exactly as before (ReadPage updates stats()).
//   * ReadPageConcurrent — safe from any number of threads at once, even
//     while ONE thread mutates the disk. Its bounds check reads an atomic
//     mirror of the page count (published after each file extension), and
//     it deliberately does not consult the freed_ bitmap: under snapshot
//     isolation a reader may legitimately fetch a page the writer has
//     already retired, and the bitmap is not safely readable concurrently
//     anyway. On POSIX the read is a positional `pread` on the underlying
//     descriptor, so concurrent readers never race on the shared file
//     offset; elsewhere it falls back to a mutex-serialized seek+read. The
//     stdio stream is opened unbuffered so the descriptor view (pread) is
//     always coherent with stdio writes.
class FileDiskManager final : public Disk {
 public:
  // Creates a new file (truncating any existing one).
  static Result<FileDiskManager> Create(const std::string& path,
                                        uint32_t page_size);

  // Opens an existing file; the page count is derived from the file size,
  // which must be a multiple of page_size.
  static Result<FileDiskManager> Open(const std::string& path,
                                      uint32_t page_size);

  // Opens an existing file for reading only. Mutating members fail with
  // InvalidArgument (AllocatePage, which cannot report, CHECK-fails); the
  // read paths, including ReadPageConcurrent, work as usual. Several
  // FileDiskManagers (or processes) may hold the same file read-only.
  static Result<FileDiskManager> OpenReadOnly(const std::string& path,
                                              uint32_t page_size);

  FileDiskManager(FileDiskManager&& other) noexcept;
  FileDiskManager& operator=(FileDiskManager&& other) noexcept;
  FileDiskManager(const FileDiskManager&) = delete;
  FileDiskManager& operator=(const FileDiskManager&) = delete;
  ~FileDiskManager() override;

  uint32_t page_size() const override { return page_size_; }
  PageId AllocatePage() override;
  Status FreePage(PageId id) override;
  Status ReadPage(PageId id, char* out) override;
  Status ReadPageConcurrent(PageId id, char* out) const override;
  Status WritePage(PageId id, const char* in) override;
  uint64_t live_pages() const override;
  uint64_t page_span() const override { return num_pages_; }
  std::vector<PageId> FreeListSnapshot() const override;
  void AdoptFreeList(const std::vector<PageId>& free_ids) override;
  const IoStats& stats() const override { return stats_; }
  void ResetStats() override { stats_.Reset(); }

  // Flushes user-space buffers and fsyncs the descriptor, so previously
  // written pages survive a crash of the host process (and, modulo the
  // device's own cache, a power failure).
  Status Sync() override;

  const std::string& path() const { return path_; }
  bool read_only() const { return read_only_; }

 private:
  FileDiskManager(std::string path, uint32_t page_size, std::FILE* file,
                  uint32_t num_pages, bool read_only);

  // Positional read shared by ReadPage and ReadPageConcurrent: pread on
  // POSIX, mutex-guarded seek+read otherwise.
  Status PositionalRead(PageId id, char* out) const;

  std::string path_;
  uint32_t page_size_ = 0;
  std::FILE* file_ = nullptr;
  int fd_ = -1;  // fileno(file_), cached for pread
  uint32_t num_pages_ = 0;
  // Mirror of num_pages_ readable from concurrent reader threads; updated
  // after the file has actually been extended. Heap-allocated so the
  // manager stays movable.
  std::unique_ptr<std::atomic<uint32_t>> pages_published_;
  bool read_only_ = false;
  std::vector<bool> freed_;  // indexed by PageId
  std::vector<PageId> free_list_;
  IoStats stats_;
  // Serializes the non-POSIX ReadPageConcurrent fallback; heap-allocated
  // so the manager stays movable.
  std::unique_ptr<std::mutex> read_mu_;
};

}  // namespace spatial

#endif  // SPATIAL_STORAGE_FILE_DISK_MANAGER_H_
