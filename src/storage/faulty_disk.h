#ifndef SPATIAL_STORAGE_FAULTY_DISK_H_
#define SPATIAL_STORAGE_FAULTY_DISK_H_

#include <memory>
#include <utility>

#include "common/macros.h"
#include "common/status.h"
#include "storage/disk.h"
#include "storage/fault_injector.h"

namespace spatial {

// Fault-injection decorator over any Disk: every durable operation
// (WritePage, Sync) consults the shared FaultInjector, and once the armed
// crash point trips, all further durable operations fail with Internal —
// modelling a process that died mid-write. Reads always pass through: the
// crash-matrix test "crashes" by abandoning the serving stack and then
// reopens the *underlying* file with a clean manager, exactly like a
// process restart.
//
// Page writes fail atomically (all-or-nothing). Torn writes are a WAL-only
// phenomenon here: the recovery design assumes sector-atomic superblock
// writes and CRC-guards every log record, so sub-page tearing is exercised
// where it matters — on the log's final record (see storage/fault_injector.h
// and docs/DURABILITY.md).
//
// AllocatePage / FreePage are in-memory bookkeeping plus a zero-extension
// write; they are forwarded untouched even after the crash trips. Any page
// the dead process "allocated" is unreachable from the durable superblock,
// so recovery never observes it — the file is at worst a few pages longer.
class FaultyDiskManager final : public Disk {
 public:
  FaultyDiskManager(std::unique_ptr<Disk> base, FaultInjector* injector)
      : base_(std::move(base)), injector_(injector) {
    SPATIAL_CHECK(base_ != nullptr);
    SPATIAL_CHECK(injector_ != nullptr);
  }

  uint32_t page_size() const override { return base_->page_size(); }
  PageId AllocatePage() override { return base_->AllocatePage(); }
  Status FreePage(PageId id) override { return base_->FreePage(id); }

  Status ReadPage(PageId id, char* out) override {
    return base_->ReadPage(id, out);
  }
  Status ReadPageConcurrent(PageId id, char* out) const override {
    return base_->ReadPageConcurrent(id, out);
  }

  Status WritePage(PageId id, const char* in) override {
    if (injector_->OnWrite() != FaultInjector::Action::kOk) {
      return Status::Internal("injected crash: page write dropped");
    }
    return base_->WritePage(id, in);
  }

  Status Sync() override {
    if (injector_->OnWrite() != FaultInjector::Action::kOk) {
      return Status::Internal("injected crash: sync dropped");
    }
    return base_->Sync();
  }

  uint64_t live_pages() const override { return base_->live_pages(); }
  uint64_t page_span() const override { return base_->page_span(); }
  std::vector<PageId> FreeListSnapshot() const override {
    return base_->FreeListSnapshot();
  }
  void AdoptFreeList(const std::vector<PageId>& free_ids) override {
    base_->AdoptFreeList(free_ids);
  }
  const IoStats& stats() const override { return base_->stats(); }
  void ResetStats() override { base_->ResetStats(); }

  Disk* base() { return base_.get(); }

 private:
  std::unique_ptr<Disk> base_;
  FaultInjector* injector_;
};

}  // namespace spatial

#endif  // SPATIAL_STORAGE_FAULTY_DISK_H_
