#ifndef SPATIAL_STORAGE_HEAP_FILE_H_
#define SPATIAL_STORAGE_HEAP_FILE_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "common/result.h"
#include "storage/buffer_pool.h"

namespace spatial {

// Identifies one record in a HeapFile.
struct RecordId {
  PageId page = kInvalidPageId;
  uint16_t slot = 0;

  friend bool operator==(const RecordId& a, const RecordId& b) {
    return a.page == b.page && a.slot == b.slot;
  }
};

// Append-only record store over slotted pages — the payload companion of
// the R-tree: the tree indexes geometry and maps object ids (or RIDs) to
// records holding the actual object data (names, attributes, geometry
// blobs), exactly how a spatial DBMS splits index and heap.
//
// Page layout (classic slotted page):
//
//   [HeapPageHeader][record bytes grow ->] ... [<- slot dir (offset,len)]
//
// Pages are chained through the header; Open() walks the chain. Records
// are immutable once appended (no update/delete — the index layer owns
// object lifecycle in this reproduction).
//
// Not thread-safe.
class HeapFile {
 public:
  // Creates an empty heap with one page.
  static Result<HeapFile> Create(BufferPool* pool);

  // Reopens a heap starting at `first_page`, recounting records.
  static Result<HeapFile> Open(BufferPool* pool, PageId first_page);

  HeapFile(HeapFile&&) = default;
  HeapFile& operator=(HeapFile&&) = default;
  HeapFile(const HeapFile&) = delete;
  HeapFile& operator=(const HeapFile&) = delete;

  // Appends a record; fails with InvalidArgument if the record cannot fit
  // on one page.
  Result<RecordId> Append(std::string_view record);

  // Reads a record by id; NotFound/OutOfRange for invalid ids.
  Result<std::string> Read(const RecordId& rid) const;

  uint64_t num_records() const { return num_records_; }
  PageId first_page() const { return first_page_; }

  // Largest record that fits on a page of the pool's size.
  static uint32_t MaxRecordSize(uint32_t page_size);

 private:
  HeapFile(BufferPool* pool, PageId first_page, PageId last_page,
           uint64_t num_records)
      : pool_(pool),
        first_page_(first_page),
        last_page_(last_page),
        num_records_(num_records) {}

  BufferPool* pool_;
  PageId first_page_;
  PageId last_page_;
  uint64_t num_records_;
};

}  // namespace spatial

#endif  // SPATIAL_STORAGE_HEAP_FILE_H_
