#ifndef SPATIAL_STORAGE_DISK_MANAGER_H_
#define SPATIAL_STORAGE_DISK_MANAGER_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "common/status.h"
#include "storage/disk.h"
#include "storage/io_stats.h"

namespace spatial {

// Simulated disk: a growable array of fixed-size pages held in memory, with
// physical-I/O accounting. The 1995 testbed's disk behaviour that matters to
// the paper (page-granular access counts) is preserved exactly; transfer
// latency is not simulated because the paper reports page counts, not
// wall-clock I/O time.
//
// Not thread-safe for mutation; ReadPageConcurrent may be called from many
// threads once the disk holds a finished, immutable index (page images are
// stable heap blocks, so concurrent memcpy reads are race-free).
class DiskManager final : public Disk {
 public:
  explicit DiskManager(uint32_t page_size);

  DiskManager(const DiskManager&) = delete;
  DiskManager& operator=(const DiskManager&) = delete;

  uint32_t page_size() const override { return page_size_; }
  PageId AllocatePage() override;
  Status FreePage(PageId id) override;
  Status ReadPage(PageId id, char* out) override;
  Status ReadPageConcurrent(PageId id, char* out) const override;
  Status WritePage(PageId id, const char* in) override;

  uint64_t live_pages() const override {
    return stats_.pages_allocated - stats_.pages_freed;
  }
  uint64_t page_span() const override { return pages_.size(); }
  std::vector<PageId> FreeListSnapshot() const override { return free_list_; }

  const IoStats& stats() const override { return stats_; }
  void ResetStats() override { stats_.Reset(); }

 private:
  bool IsLive(PageId id) const;

  uint32_t page_size_;
  std::vector<std::unique_ptr<char[]>> pages_;
  std::vector<bool> freed_;
  std::vector<PageId> free_list_;
  IoStats stats_;
};

}  // namespace spatial

#endif  // SPATIAL_STORAGE_DISK_MANAGER_H_
