#ifndef SPATIAL_STORAGE_RESIDENT_TREE_H_
#define SPATIAL_STORAGE_RESIDENT_TREE_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "geom/metrics_simd.h"
#include "storage/buffer_pool.h"

namespace spatial {

// The memory-resident fast path (docs/PERF.md, "Resident tier").
//
// The paged traversal pays three per-visit costs even when every page is
// cached: the buffer-pool pin (hash probe + frame bookkeeping), the
// page-image translation (NodeView over raw bytes), and the AoS -> SoA
// transpose that feeds the SIMD distance kernels. ResidentTree::Compile
// walks a tree once and emits a single contiguous arena in which every node
// is stored *in the form the traversal consumes*: its SoA planes already
// transposed (bit-identical to what StageSoa would produce, because both
// run the same dispatched staging kernel) and its id column densely packed.
// Queries then expand a node with one table lookup — no pin, no view, no
// transpose.
//
// The compiled tree is an immutable snapshot of the source tree at compile
// time, keyed by the (source_epoch, root_page) it was built from; serving
// layers drop it when a write publishes a new version and fall back to the
// paged path (service/query_service.h owns that lifecycle).
//
// Node identity stays PageId: traversal order, tie-breaking, and the
// visit-trace test hook all key on child page ids, so the resident tier
// preserves them and maps PageId -> node slot through a dense table (page
// ids are densely allocated by both disk backends). That is what makes the
// resident traversal's answers AND visit order memcmp-identical to the
// paged path — enforced by tests/resident_tree_test.cc, not hoped for.
//
// The arena is allocated in one block, 2 MiB-aligned and hugepage-backed
// where the platform cooperates (MAP_HUGETLB, falling back to
// madvise(MADV_HUGEPAGE), falling back to the heap) so deep traversals
// touch as few TLB entries as possible.
//
// ResidentTree is immutable after Compile and safe to share across any
// number of reader threads.

template <int D>
struct ResidentNodeRef {
  const double* planes = nullptr;  // 2*D SoA planes of SoaStride(count)
  const uint64_t* ids = nullptr;   // object ids (leaf) or child PageIds
  uint32_t count = 0;
  uint16_t level = 0;  // 0 = leaf

  bool is_leaf() const { return level == 0; }
  SoaBlock<D> soa() const {
    return SoaBlock<D>{planes, SoaStride(count), count};
  }
  // Mirrors ExpandedNode's id accessors, so a traversal templated on the
  // backend reads ids through the same expressions on both.
  uint64_t id(uint32_t i) const { return ids[i]; }
  const uint64_t* dense_ids() const { return ids; }
};

template <int D>
class ResidentTree {
 public:
  struct Options {
    // Try MAP_HUGETLB / MADV_HUGEPAGE before falling back to the heap.
    bool try_hugepages = true;
    // Refuse to compile a tree whose arena would exceed this (0 = no cap).
    // The serving layer uses this as its overflow guard: a tree too big to
    // pin stays on the paged path.
    uint64_t max_arena_bytes = 0;
    // Provenance tag for snapshot-published trees: the ServingDb epoch the
    // compiled tree was built from. Readers compare it against their pinned
    // snapshot to detect staleness. Read-only trees leave it 0.
    uint64_t source_epoch = 0;
  };

  // Compiles the tree rooted at `root_page` (with `tree_size` objects, as
  // tracked by RTree/TreeSnapshot) by reading every node once through
  // `pool`. The pool is only used during the call; the compiled tree holds
  // no reference to it. An empty tree (size 0) compiles to an empty
  // resident tree.
  static Result<ResidentTree> Compile(BufferPool* pool, PageId root_page,
                                      uint64_t tree_size,
                                      const Options& options);

  ResidentTree(ResidentTree&&) noexcept = default;
  ResidentTree& operator=(ResidentTree&&) noexcept = default;
  ResidentTree(const ResidentTree&) = delete;
  ResidentTree& operator=(const ResidentTree&) = delete;

  // O(1) node lookup; nullptr for a PageId that is not part of this tree.
  const ResidentNodeRef<D>* Find(PageId id) const {
    if (id >= page_map_.size()) return nullptr;
    const uint32_t slot = page_map_[id];
    return slot == kNoNode ? nullptr : &nodes_[slot];
  }

  PageId root_page() const { return root_page_; }
  uint64_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  uint16_t root_level() const { return root_level_; }
  uint32_t node_count() const { return static_cast<uint32_t>(nodes_.size()); }
  uint64_t arena_bytes() const { return arena_bytes_; }
  uint64_t compile_ns() const { return compile_ns_; }
  bool hugepage_backed() const { return hugepage_backed_; }
  uint64_t source_epoch() const { return source_epoch_; }

 private:
  static constexpr uint32_t kNoNode = 0xffffffffu;

  struct ArenaDelete {
    uint64_t mapped_bytes = 0;  // 0 = heap allocation
    void operator()(double* p) const;
  };

  ResidentTree() = default;

  std::unique_ptr<double[], ArenaDelete> arena_;
  std::vector<ResidentNodeRef<D>> nodes_;
  std::vector<uint32_t> page_map_;  // PageId -> slot in nodes_
  PageId root_page_ = kInvalidPageId;
  uint64_t size_ = 0;
  uint16_t root_level_ = 0;
  uint64_t arena_bytes_ = 0;
  uint64_t compile_ns_ = 0;
  bool hugepage_backed_ = false;
  uint64_t source_epoch_ = 0;
};

extern template class ResidentTree<2>;
extern template class ResidentTree<3>;
extern template class ResidentTree<4>;

}  // namespace spatial

#endif  // SPATIAL_STORAGE_RESIDENT_TREE_H_
