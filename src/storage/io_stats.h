#ifndef SPATIAL_STORAGE_IO_STATS_H_
#define SPATIAL_STORAGE_IO_STATS_H_

#include <cstdint>

namespace spatial {

// Counters kept by DiskManager (physical I/O) and BufferPool (logical
// accesses). The SIGMOD'95 evaluation reports *page accesses* per query;
// we expose both logical fetches (what the paper counts, since it assumes
// a cold/no buffer) and physical reads after the buffer pool.
struct IoStats {
  uint64_t physical_reads = 0;
  uint64_t physical_writes = 0;
  uint64_t pages_allocated = 0;
  uint64_t pages_freed = 0;

  void Reset() { *this = IoStats(); }

  // Aggregation across independent counters (e.g. per-worker disks in the
  // query service, or per-run sums in the experiment drivers).
  IoStats& operator+=(const IoStats& other) {
    physical_reads += other.physical_reads;
    physical_writes += other.physical_writes;
    pages_allocated += other.pages_allocated;
    pages_freed += other.pages_freed;
    return *this;
  }

  friend IoStats operator+(IoStats a, const IoStats& b) { return a += b; }
};

struct BufferStats {
  uint64_t logical_fetches = 0;  // Fetch() calls: the paper's page accesses.
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t evictions = 0;
  uint64_t dirty_writebacks = 0;

  double HitRate() const {
    return logical_fetches == 0
               ? 0.0
               : static_cast<double>(hits) /
                     static_cast<double>(logical_fetches);
  }

  void Reset() { *this = BufferStats(); }

  BufferStats& operator+=(const BufferStats& other) {
    logical_fetches += other.logical_fetches;
    hits += other.hits;
    misses += other.misses;
    evictions += other.evictions;
    dirty_writebacks += other.dirty_writebacks;
    return *this;
  }

  friend BufferStats operator+(BufferStats a, const BufferStats& b) {
    return a += b;
  }
};

}  // namespace spatial

#endif  // SPATIAL_STORAGE_IO_STATS_H_
