#ifndef SPATIAL_STORAGE_IO_STATS_H_
#define SPATIAL_STORAGE_IO_STATS_H_

#include <cstdint>

#include "obs/stat_counter.h"

namespace spatial {

// Counters kept by DiskManager (physical I/O) and BufferPool (logical
// accesses). The SIGMOD'95 evaluation reports *page accesses* per query;
// we expose both logical fetches (what the paper counts, since it assumes
// a cold/no buffer) and physical reads after the buffer pool.
//
// Fields are obs::StatCounter cells: writes stay single-writer and cost a
// plain add (each disk view / buffer pool is owned by one thread), but a
// metrics scraper may now read a live instance from another thread
// without a data race — the basis of QueryService::Snapshot() and the
// /metrics exposition (docs/OBSERVABILITY.md).
struct IoStats {
  obs::StatCounter physical_reads;
  obs::StatCounter physical_writes;
  obs::StatCounter pages_allocated;
  obs::StatCounter pages_freed;

  void Reset() { *this = IoStats(); }

  // Aggregation across independent counters (e.g. per-worker disks in the
  // query service, or per-run sums in the experiment drivers). The
  // destination must be a private plain-value copy (not a live shard).
  IoStats& operator+=(const IoStats& other) {
    physical_reads += other.physical_reads;
    physical_writes += other.physical_writes;
    pages_allocated += other.pages_allocated;
    pages_freed += other.pages_freed;
    return *this;
  }

  friend IoStats operator+(IoStats a, const IoStats& b) { return a += b; }
};

struct BufferStats {
  obs::StatCounter logical_fetches;  // Fetch() calls: the paper's accesses.
  obs::StatCounter hits;
  obs::StatCounter misses;
  obs::StatCounter evictions;
  obs::StatCounter dirty_writebacks;

  double HitRate() const {
    const uint64_t fetches = logical_fetches;
    return fetches == 0
               ? 0.0
               : static_cast<double>(hits) / static_cast<double>(fetches);
  }

  void Reset() { *this = BufferStats(); }

  BufferStats& operator+=(const BufferStats& other) {
    logical_fetches += other.logical_fetches;
    hits += other.hits;
    misses += other.misses;
    evictions += other.evictions;
    dirty_writebacks += other.dirty_writebacks;
    return *this;
  }

  friend BufferStats operator+(BufferStats a, const BufferStats& b) {
    return a += b;
  }
};

}  // namespace spatial

#endif  // SPATIAL_STORAGE_IO_STATS_H_
