#ifndef SPATIAL_STORAGE_IO_STATS_H_
#define SPATIAL_STORAGE_IO_STATS_H_

#include <cstdint>

namespace spatial {

// Counters kept by DiskManager (physical I/O) and BufferPool (logical
// accesses). The SIGMOD'95 evaluation reports *page accesses* per query;
// we expose both logical fetches (what the paper counts, since it assumes
// a cold/no buffer) and physical reads after the buffer pool.
struct IoStats {
  uint64_t physical_reads = 0;
  uint64_t physical_writes = 0;
  uint64_t pages_allocated = 0;
  uint64_t pages_freed = 0;

  void Reset() { *this = IoStats(); }
};

struct BufferStats {
  uint64_t logical_fetches = 0;  // Fetch() calls: the paper's page accesses.
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t evictions = 0;
  uint64_t dirty_writebacks = 0;

  double HitRate() const {
    return logical_fetches == 0
               ? 0.0
               : static_cast<double>(hits) /
                     static_cast<double>(logical_fetches);
  }

  void Reset() { *this = BufferStats(); }
};

}  // namespace spatial

#endif  // SPATIAL_STORAGE_IO_STATS_H_
