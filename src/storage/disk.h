#ifndef SPATIAL_STORAGE_DISK_H_
#define SPATIAL_STORAGE_DISK_H_

#include <cstdint>

#include "common/status.h"
#include "storage/io_stats.h"

namespace spatial {

using PageId = uint32_t;
inline constexpr PageId kInvalidPageId = 0xffffffffu;

// Abstract page-granular storage device. Two implementations ship:
//   * DiskManager     — in-memory simulated disk (experiments; default),
//   * FileDiskManager — a real file on the local filesystem (persistence).
// The BufferPool talks to this interface only, so indexes are storage-
// agnostic. Virtual dispatch happens once per *physical* I/O — never on
// the logical-access path.
class Disk {
 public:
  virtual ~Disk() = default;

  virtual uint32_t page_size() const = 0;

  // Allocates a zero-filled page and returns its id. May reuse freed ids.
  virtual PageId AllocatePage() = 0;

  // Returns a page to the free list. Double frees are rejected.
  virtual Status FreePage(PageId id) = 0;

  // Copies the page contents into `out` (page_size bytes).
  virtual Status ReadPage(PageId id, char* out) = 0;

  // Copies page_size bytes from `in` into the page.
  virtual Status WritePage(PageId id, const char* in) = 0;

  // Number of live (allocated, not freed) pages.
  virtual uint64_t live_pages() const = 0;

  virtual const IoStats& stats() const = 0;
  virtual void ResetStats() = 0;
};

}  // namespace spatial

#endif  // SPATIAL_STORAGE_DISK_H_
