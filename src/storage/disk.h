#ifndef SPATIAL_STORAGE_DISK_H_
#define SPATIAL_STORAGE_DISK_H_

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "storage/io_stats.h"

namespace spatial {

using PageId = uint32_t;
inline constexpr PageId kInvalidPageId = 0xffffffffu;

// Abstract page-granular storage device. Three implementations ship:
//   * DiskManager      — in-memory simulated disk (experiments; default),
//   * FileDiskManager  — a real file on the local filesystem (persistence),
//   * ReadOnlyDiskView — thread-private read view over a shared base disk
//                        (the query service's per-worker adapter).
// The BufferPool talks to this interface only, so indexes are storage-
// agnostic. Virtual dispatch happens once per *physical* I/O — never on
// the logical-access path.
//
// Thread-safety contract: all mutating members (and ReadPage, which updates
// stats) are single-threaded. ReadPageConcurrent is the one exception — it
// may be called from many threads at once provided no mutating member runs
// concurrently (the "immutable while served" regime of the query service).
class Disk {
 public:
  virtual ~Disk() = default;

  virtual uint32_t page_size() const = 0;

  // Allocates a zero-filled page and returns its id. May reuse freed ids.
  virtual PageId AllocatePage() = 0;

  // Returns a page to the free list. Double frees are rejected.
  virtual Status FreePage(PageId id) = 0;

  // Copies the page contents into `out` (page_size bytes).
  virtual Status ReadPage(PageId id, char* out) = 0;

  // Like ReadPage, but safe to call concurrently from multiple threads as
  // long as no thread is mutating the disk (allocate/free/write). Does NOT
  // update stats() — callers that need counters keep their own (see
  // ReadOnlyDiskView).
  virtual Status ReadPageConcurrent(PageId id, char* out) const = 0;

  // Copies page_size bytes from `in` into the page.
  virtual Status WritePage(PageId id, const char* in) = 0;

  // Number of live (allocated, not freed) pages.
  virtual uint64_t live_pages() const = 0;

  // Total page span of the medium, including freed pages (the file size in
  // pages for a file backend). live_pages() <= page_span().
  virtual uint64_t page_span() const { return live_pages(); }

  // Makes previously written pages durable (fsync for a file backend).
  // No-op for media without a volatile cache.
  virtual Status Sync() { return Status::OK(); }

  // Free-list persistence hooks for the durability subsystem: the
  // superblock stores the free list at each checkpoint and re-seeds it on
  // reopen, so pages retired by copy-on-write updates are reusable across
  // process lifetimes. Backends without an externalizable free list return
  // an empty snapshot and ignore adoption.
  virtual std::vector<PageId> FreeListSnapshot() const { return {}; }
  virtual void AdoptFreeList(const std::vector<PageId>& free_ids) {
    (void)free_ids;
  }

  virtual const IoStats& stats() const = 0;
  virtual void ResetStats() = 0;
};

}  // namespace spatial

#endif  // SPATIAL_STORAGE_DISK_H_
