#ifndef SPATIAL_STORAGE_COW_H_
#define SPATIAL_STORAGE_COW_H_

#include "storage/disk.h"

namespace spatial {

// Copy-on-write page lifecycle policy, consulted by the R-tree's mutation
// paths when a ServingDb is applying writes while readers hold pinned
// snapshots (src/snapshot/version_table.h is the production implementation).
//
// Contract, per publishing epoch:
//   * NeedsShadow(id) — true if `id` may be referenced by a published
//     snapshot and must therefore not be mutated in place. Pages allocated
//     since the last publish ("fresh" pages) return false: no reader can
//     reach them yet, so the writer may edit them directly instead of
//     copying once per mutation.
//   * OnPageAllocated(id) — the tree allocated `id` (shadow copy, split
//     sibling, or new root); it is fresh until the next publish.
//   * OnPageRetired(id) — `id` left the writer's current tree version
//     (shadowed, dissolved, or shrunk away). The page's bytes must remain
//     readable until every snapshot that can reference it is unpinned AND
//     a checkpoint has moved the durable superblock past it; the policy
//     owns that deferral (epoch-tagged retire list).
//
// With cow disabled (RTree::SetCowPolicy(nullptr), the default), mutation
// is in place and retired pages are freed immediately — the classic
// single-owner behaviour every pre-serving test exercises.
class CowPolicy {
 public:
  virtual ~CowPolicy() = default;

  virtual bool NeedsShadow(PageId id) const = 0;
  virtual void OnPageAllocated(PageId id) = 0;
  virtual void OnPageRetired(PageId id) = 0;
};

}  // namespace spatial

#endif  // SPATIAL_STORAGE_COW_H_
