#include "storage/disk_manager.h"

#include <cstring>

#include "common/macros.h"

namespace spatial {

DiskManager::DiskManager(uint32_t page_size) : page_size_(page_size) {
  SPATIAL_CHECK(page_size_ >= 64);
}

PageId DiskManager::AllocatePage() {
  ++stats_.pages_allocated;
  if (!free_list_.empty()) {
    const PageId id = free_list_.back();
    free_list_.pop_back();
    freed_[id] = false;
    std::memset(pages_[id].get(), 0, page_size_);
    return id;
  }
  const PageId id = static_cast<PageId>(pages_.size());
  SPATIAL_CHECK(id != kInvalidPageId);
  pages_.push_back(std::make_unique<char[]>(page_size_));
  freed_.push_back(false);
  return id;
}

Status DiskManager::FreePage(PageId id) {
  if (id >= pages_.size()) {
    return Status::InvalidArgument("FreePage: page id out of range");
  }
  if (freed_[id]) {
    return Status::InvalidArgument("FreePage: double free");
  }
  freed_[id] = true;
  free_list_.push_back(id);
  ++stats_.pages_freed;
  return Status::OK();
}

Status DiskManager::ReadPage(PageId id, char* out) {
  if (!IsLive(id)) {
    return Status::InvalidArgument("ReadPage: page not allocated");
  }
  std::memcpy(out, pages_[id].get(), page_size_);
  ++stats_.physical_reads;
  return Status::OK();
}

Status DiskManager::ReadPageConcurrent(PageId id, char* out) const {
  if (!IsLive(id)) {
    return Status::InvalidArgument("ReadPageConcurrent: page not allocated");
  }
  std::memcpy(out, pages_[id].get(), page_size_);
  return Status::OK();
}

Status DiskManager::WritePage(PageId id, const char* in) {
  if (!IsLive(id)) {
    return Status::InvalidArgument("WritePage: page not allocated");
  }
  std::memcpy(pages_[id].get(), in, page_size_);
  ++stats_.physical_writes;
  return Status::OK();
}

bool DiskManager::IsLive(PageId id) const {
  return id < pages_.size() && !freed_[id];
}

}  // namespace spatial
