#ifndef SPATIAL_STORAGE_READ_ONLY_DISK_H_
#define SPATIAL_STORAGE_READ_ONLY_DISK_H_

#include <chrono>
#include <cstdint>
#include <thread>

#include "common/macros.h"
#include "common/status.h"
#include "obs/histogram.h"
#include "storage/disk.h"

namespace spatial {

// Thread-private read-only view over a shared base disk. The query service
// gives each worker thread one view (and one private BufferPool on top of
// it): reads forward to the base's thread-safe ReadPageConcurrent, while
// I/O counters live in the view itself — so N workers share one immutable
// disk image with zero locks and zero shared mutable state on the read
// path. Works over both backends (DiskManager pages are stable heap
// blocks; FileDiskManager reads via pread).
//
// The view itself is NOT shared between threads (its stats are plain
// counters); create one per thread. The base disk must stay alive and
// unmutated for the lifetime of every view.
//
// `simulated_read_latency_us`, when nonzero, makes every physical read
// sleep that long — modelling the rotational-disk latency the SIGMOD'95
// cost model assumes (where page accesses, not CPU, dominate). Sleeping
// yields the core, so the throughput-scaling experiment (E14) can observe
// I/O overlap across workers independent of the host's core count.
class ReadOnlyDiskView final : public Disk {
 public:
  // `read_latency`, when non-null, receives the wall time of every
  // physical read (the buffer-pool miss path only — ns-scale clock reads
  // against µs-scale pread are noise). The histogram must outlive the
  // view; the query service points it at a per-worker instrument.
  explicit ReadOnlyDiskView(const Disk* base,
                            uint32_t simulated_read_latency_us = 0,
                            obs::PowerHistogram* read_latency = nullptr)
      : base_(base),
        simulated_read_latency_us_(simulated_read_latency_us),
        read_latency_(read_latency) {
    SPATIAL_CHECK(base != nullptr);
  }

  uint32_t page_size() const override { return base_->page_size(); }
  uint64_t live_pages() const override { return base_->live_pages(); }
  uint64_t page_span() const override { return base_->page_span(); }

  // Mutation is a programming error on a read-only view. AllocatePage has
  // no error channel, so it aborts.
  PageId AllocatePage() override {
    std::fprintf(stderr, "AllocatePage called on ReadOnlyDiskView\n");
    std::abort();
  }
  Status FreePage(PageId) override {
    return Status::InvalidArgument("FreePage: disk view is read-only");
  }
  Status WritePage(PageId, const char*) override {
    return Status::InvalidArgument("WritePage: disk view is read-only");
  }

  Status ReadPage(PageId id, char* out) override {
    if (read_latency_ != nullptr) {
      const auto start = std::chrono::steady_clock::now();
      SPATIAL_RETURN_IF_ERROR(base_->ReadPageConcurrent(id, out));
      SimulateLatency();
      read_latency_->Record(static_cast<uint64_t>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(
              std::chrono::steady_clock::now() - start)
              .count()));
    } else {
      SPATIAL_RETURN_IF_ERROR(base_->ReadPageConcurrent(id, out));
      SimulateLatency();
    }
    ++stats_.physical_reads;
    return Status::OK();
  }

  Status ReadPageConcurrent(PageId id, char* out) const override {
    return base_->ReadPageConcurrent(id, out);
  }

  const IoStats& stats() const override { return stats_; }
  void ResetStats() override { stats_.Reset(); }

 private:
  void SimulateLatency() const {
    if (simulated_read_latency_us_ != 0) {
      std::this_thread::sleep_for(
          std::chrono::microseconds(simulated_read_latency_us_));
    }
  }

  const Disk* base_;
  const uint32_t simulated_read_latency_us_;
  obs::PowerHistogram* read_latency_;
  IoStats stats_;  // single-writer cells; scrapers may read live
};

}  // namespace spatial

#endif  // SPATIAL_STORAGE_READ_ONLY_DISK_H_
