#include "storage/heap_file.h"

#include <cstring>

#include "common/macros.h"

namespace spatial {
namespace {

constexpr uint32_t kHeapMagic = 0x48454150;  // "HEAP"

struct HeapPageHeader {
  uint32_t magic;
  uint16_t count;        // records on this page
  uint16_t free_offset;  // start of free space (end of record bytes)
  PageId next_page;      // chain link; kInvalidPageId at the tail
};
static_assert(sizeof(HeapPageHeader) == 12);

struct SlotEntry {
  uint16_t offset;
  uint16_t length;
};
static_assert(sizeof(SlotEntry) == 4);

HeapPageHeader ReadHeader(const char* page) {
  HeapPageHeader header;
  std::memcpy(&header, page, sizeof(header));
  return header;
}

void WriteHeader(char* page, const HeapPageHeader& header) {
  std::memcpy(page, &header, sizeof(header));
}

size_t SlotOffset(uint32_t page_size, uint16_t slot) {
  return page_size - (static_cast<size_t>(slot) + 1) * sizeof(SlotEntry);
}

SlotEntry ReadSlot(const char* page, uint32_t page_size, uint16_t slot) {
  SlotEntry entry;
  std::memcpy(&entry, page + SlotOffset(page_size, slot), sizeof(entry));
  return entry;
}

void WriteSlot(char* page, uint32_t page_size, uint16_t slot,
               const SlotEntry& entry) {
  std::memcpy(page + SlotOffset(page_size, slot), &entry, sizeof(entry));
}

void InitHeapPage(char* page) {
  HeapPageHeader header;
  header.magic = kHeapMagic;
  header.count = 0;
  header.free_offset = sizeof(HeapPageHeader);
  header.next_page = kInvalidPageId;
  WriteHeader(page, header);
}

// Free bytes available for one more record (slot entry included).
uint32_t FreeSpace(const HeapPageHeader& header, uint32_t page_size) {
  const size_t dir_start =
      page_size - static_cast<size_t>(header.count) * sizeof(SlotEntry);
  return static_cast<uint32_t>(dir_start - header.free_offset);
}

}  // namespace

uint32_t HeapFile::MaxRecordSize(uint32_t page_size) {
  return page_size - static_cast<uint32_t>(sizeof(HeapPageHeader)) -
         static_cast<uint32_t>(sizeof(SlotEntry));
}

Result<HeapFile> HeapFile::Create(BufferPool* pool) {
  if (pool == nullptr) {
    return Status::InvalidArgument("HeapFile::Create: pool is null");
  }
  if (pool->page_size() < sizeof(HeapPageHeader) + sizeof(SlotEntry) + 16) {
    return Status::InvalidArgument("page size too small for a heap page");
  }
  SPATIAL_ASSIGN_OR_RETURN(PageHandle page, pool->NewPage());
  InitHeapPage(page.data());
  page.MarkDirty();
  return HeapFile(pool, page.id(), page.id(), /*num_records=*/0);
}

Result<HeapFile> HeapFile::Open(BufferPool* pool, PageId first_page) {
  if (pool == nullptr) {
    return Status::InvalidArgument("HeapFile::Open: pool is null");
  }
  uint64_t records = 0;
  PageId current = first_page;
  PageId last = first_page;
  while (current != kInvalidPageId) {
    SPATIAL_ASSIGN_OR_RETURN(PageHandle page, pool->Fetch(current));
    const HeapPageHeader header = ReadHeader(page.data());
    if (header.magic != kHeapMagic) {
      return Status::Corruption("heap page has bad magic");
    }
    records += header.count;
    last = current;
    current = header.next_page;
  }
  return HeapFile(pool, first_page, last, records);
}

Result<RecordId> HeapFile::Append(std::string_view record) {
  const uint32_t page_size = pool_->page_size();
  if (record.size() > MaxRecordSize(page_size)) {
    return Status::InvalidArgument(
        "record of " + std::to_string(record.size()) +
        " bytes exceeds the page capacity of " +
        std::to_string(MaxRecordSize(page_size)));
  }
  SPATIAL_ASSIGN_OR_RETURN(PageHandle page, pool_->Fetch(last_page_));
  HeapPageHeader header = ReadHeader(page.data());
  if (header.magic != kHeapMagic) {
    return Status::Corruption("heap page has bad magic");
  }
  if (FreeSpace(header, page_size) < record.size() + sizeof(SlotEntry)) {
    // Chain a fresh page.
    SPATIAL_ASSIGN_OR_RETURN(PageHandle fresh, pool_->NewPage());
    InitHeapPage(fresh.data());
    fresh.MarkDirty();
    header.next_page = fresh.id();
    WriteHeader(page.data(), header);
    page.MarkDirty();
    last_page_ = fresh.id();
    page = std::move(fresh);
    header = ReadHeader(page.data());
  }
  const uint16_t slot = header.count;
  SlotEntry entry;
  entry.offset = header.free_offset;
  entry.length = static_cast<uint16_t>(record.size());
  std::memcpy(page.data() + entry.offset, record.data(), record.size());
  WriteSlot(page.data(), page_size, slot, entry);
  header.free_offset = static_cast<uint16_t>(entry.offset + record.size());
  ++header.count;
  WriteHeader(page.data(), header);
  page.MarkDirty();
  ++num_records_;
  return RecordId{page.id(), slot};
}

Result<std::string> HeapFile::Read(const RecordId& rid) const {
  SPATIAL_ASSIGN_OR_RETURN(PageHandle page, pool_->Fetch(rid.page));
  const HeapPageHeader header = ReadHeader(page.data());
  if (header.magic != kHeapMagic) {
    return Status::Corruption("heap page has bad magic");
  }
  if (rid.slot >= header.count) {
    return Status::OutOfRange("slot " + std::to_string(rid.slot) +
                              " out of range on page " +
                              std::to_string(rid.page));
  }
  const SlotEntry entry = ReadSlot(page.data(), pool_->page_size(), rid.slot);
  return std::string(page.data() + entry.offset, entry.length);
}

}  // namespace spatial
