#include "storage/file_disk_manager.h"

#include <cstring>
#include <memory>
#include <utility>

#include "common/macros.h"

namespace spatial {

namespace {

Status SeekToPage(std::FILE* file, PageId id, uint32_t page_size) {
  const long offset = static_cast<long>(id) * static_cast<long>(page_size);
  if (std::fseek(file, offset, SEEK_SET) != 0) {
    return Status::Internal("seek failed for page " + std::to_string(id));
  }
  return Status::OK();
}

}  // namespace

Result<FileDiskManager> FileDiskManager::Create(const std::string& path,
                                                uint32_t page_size) {
  if (page_size < 64) {
    return Status::InvalidArgument("page size must be >= 64");
  }
  std::FILE* file = std::fopen(path.c_str(), "w+b");
  if (file == nullptr) {
    return Status::InvalidArgument("cannot create file: " + path);
  }
  return FileDiskManager(path, page_size, file, /*num_pages=*/0);
}

Result<FileDiskManager> FileDiskManager::Open(const std::string& path,
                                              uint32_t page_size) {
  if (page_size < 64) {
    return Status::InvalidArgument("page size must be >= 64");
  }
  std::FILE* file = std::fopen(path.c_str(), "r+b");
  if (file == nullptr) {
    return Status::NotFound("cannot open file: " + path);
  }
  if (std::fseek(file, 0, SEEK_END) != 0) {
    std::fclose(file);
    return Status::Internal("seek failed: " + path);
  }
  const long size = std::ftell(file);
  if (size < 0 || size % static_cast<long>(page_size) != 0) {
    std::fclose(file);
    return Status::Corruption("file size is not a multiple of page size: " +
                              path);
  }
  return FileDiskManager(path, page_size, file,
                         static_cast<uint32_t>(size / page_size));
}

FileDiskManager::FileDiskManager(std::string path, uint32_t page_size,
                                 std::FILE* file, uint32_t num_pages)
    : path_(std::move(path)),
      page_size_(page_size),
      file_(file),
      num_pages_(num_pages),
      freed_(num_pages, false) {}

FileDiskManager::FileDiskManager(FileDiskManager&& other) noexcept
    : Disk() {
  *this = std::move(other);
}

FileDiskManager& FileDiskManager::operator=(
    FileDiskManager&& other) noexcept {
  if (this != &other) {
    if (file_ != nullptr) std::fclose(file_);
    path_ = std::move(other.path_);
    page_size_ = other.page_size_;
    file_ = other.file_;
    num_pages_ = other.num_pages_;
    freed_ = std::move(other.freed_);
    free_list_ = std::move(other.free_list_);
    stats_ = other.stats_;
    other.file_ = nullptr;
  }
  return *this;
}

FileDiskManager::~FileDiskManager() {
  if (file_ != nullptr) std::fclose(file_);
}

PageId FileDiskManager::AllocatePage() {
  ++stats_.pages_allocated;
  if (!free_list_.empty()) {
    const PageId id = free_list_.back();
    free_list_.pop_back();
    freed_[id] = false;
    // Zero the recycled page to match DiskManager semantics.
    std::unique_ptr<char[]> zeros(new char[page_size_]());
    WritePage(id, zeros.get()).ok();
    --stats_.physical_writes;  // allocation zeroing is not user I/O
    return id;
  }
  const PageId id = num_pages_;
  SPATIAL_CHECK(id != kInvalidPageId);
  ++num_pages_;
  freed_.push_back(false);
  // Extend the file by one zero page.
  std::unique_ptr<char[]> zeros(new char[page_size_]());
  if (SeekToPage(file_, id, page_size_).ok()) {
    std::fwrite(zeros.get(), 1, page_size_, file_);
  }
  return id;
}

Status FileDiskManager::FreePage(PageId id) {
  if (id >= num_pages_) {
    return Status::InvalidArgument("FreePage: page id out of range");
  }
  if (freed_[id]) {
    return Status::InvalidArgument("FreePage: double free");
  }
  freed_[id] = true;
  free_list_.push_back(id);
  ++stats_.pages_freed;
  return Status::OK();
}

Status FileDiskManager::ReadPage(PageId id, char* out) {
  if (id >= num_pages_ || freed_[id]) {
    return Status::InvalidArgument("ReadPage: page not allocated");
  }
  SPATIAL_RETURN_IF_ERROR(SeekToPage(file_, id, page_size_));
  if (std::fread(out, 1, page_size_, file_) != page_size_) {
    return Status::Corruption("short read on page " + std::to_string(id));
  }
  ++stats_.physical_reads;
  return Status::OK();
}

Status FileDiskManager::WritePage(PageId id, const char* in) {
  if (id >= num_pages_ || freed_[id]) {
    return Status::InvalidArgument("WritePage: page not allocated");
  }
  SPATIAL_RETURN_IF_ERROR(SeekToPage(file_, id, page_size_));
  if (std::fwrite(in, 1, page_size_, file_) != page_size_) {
    return Status::Internal("short write on page " + std::to_string(id));
  }
  ++stats_.physical_writes;
  return Status::OK();
}

uint64_t FileDiskManager::live_pages() const {
  return num_pages_ - free_list_.size();
}

Status FileDiskManager::Sync() {
  if (std::fflush(file_) != 0) {
    return Status::Internal("fflush failed: " + path_);
  }
  return Status::OK();
}

}  // namespace spatial
