#include "storage/file_disk_manager.h"

#include <cerrno>
#include <cstring>
#include <memory>
#include <utility>

#include "common/macros.h"

#if defined(__unix__) || defined(__APPLE__)
#define SPATIAL_HAVE_PREAD 1
#include <unistd.h>
#endif

namespace spatial {

namespace {

Status SeekToPage(std::FILE* file, PageId id, uint32_t page_size) {
  const long offset = static_cast<long>(id) * static_cast<long>(page_size);
  if (std::fseek(file, offset, SEEK_SET) != 0) {
    return Status::Internal("seek failed for page " + std::to_string(id));
  }
  return Status::OK();
}

std::FILE* OpenUnbuffered(const std::string& path, const char* mode) {
  std::FILE* file = std::fopen(path.c_str(), mode);
  if (file != nullptr) {
    // Unbuffered stdio keeps the descriptor view (pread) coherent with
    // stdio writes; pages are written whole, so buffering bought little.
    std::setvbuf(file, nullptr, _IONBF, 0);
  }
  return file;
}

Result<uint32_t> PageCountFromFileSize(std::FILE* file, uint32_t page_size,
                                       const std::string& path) {
  if (std::fseek(file, 0, SEEK_END) != 0) {
    return Status::Internal("seek failed: " + path);
  }
  const long size = std::ftell(file);
  if (size < 0 || size % static_cast<long>(page_size) != 0) {
    return Status::Corruption("file size is not a multiple of page size: " +
                              path);
  }
  return static_cast<uint32_t>(size / page_size);
}

}  // namespace

Result<FileDiskManager> FileDiskManager::Create(const std::string& path,
                                                uint32_t page_size) {
  if (page_size < 64) {
    return Status::InvalidArgument("page size must be >= 64");
  }
  std::FILE* file = OpenUnbuffered(path, "w+b");
  if (file == nullptr) {
    return Status::InvalidArgument("cannot create file: " + path);
  }
  return FileDiskManager(path, page_size, file, /*num_pages=*/0,
                         /*read_only=*/false);
}

Result<FileDiskManager> FileDiskManager::Open(const std::string& path,
                                              uint32_t page_size) {
  if (page_size < 64) {
    return Status::InvalidArgument("page size must be >= 64");
  }
  std::FILE* file = OpenUnbuffered(path, "r+b");
  if (file == nullptr) {
    return Status::NotFound("cannot open file: " + path);
  }
  auto num_pages = PageCountFromFileSize(file, page_size, path);
  if (!num_pages.ok()) {
    std::fclose(file);
    return num_pages.status();
  }
  return FileDiskManager(path, page_size, file, *num_pages,
                         /*read_only=*/false);
}

Result<FileDiskManager> FileDiskManager::OpenReadOnly(const std::string& path,
                                                      uint32_t page_size) {
  if (page_size < 64) {
    return Status::InvalidArgument("page size must be >= 64");
  }
  std::FILE* file = OpenUnbuffered(path, "rb");
  if (file == nullptr) {
    return Status::NotFound("cannot open file: " + path);
  }
  auto num_pages = PageCountFromFileSize(file, page_size, path);
  if (!num_pages.ok()) {
    std::fclose(file);
    return num_pages.status();
  }
  return FileDiskManager(path, page_size, file, *num_pages,
                         /*read_only=*/true);
}

FileDiskManager::FileDiskManager(std::string path, uint32_t page_size,
                                 std::FILE* file, uint32_t num_pages,
                                 bool read_only)
    : path_(std::move(path)),
      page_size_(page_size),
      file_(file),
      fd_(fileno(file)),
      num_pages_(num_pages),
      pages_published_(std::make_unique<std::atomic<uint32_t>>(num_pages)),
      read_only_(read_only),
      freed_(num_pages, false),
      read_mu_(std::make_unique<std::mutex>()) {}

FileDiskManager::FileDiskManager(FileDiskManager&& other) noexcept
    : Disk() {
  *this = std::move(other);
}

FileDiskManager& FileDiskManager::operator=(
    FileDiskManager&& other) noexcept {
  if (this != &other) {
    if (file_ != nullptr) std::fclose(file_);
    path_ = std::move(other.path_);
    page_size_ = other.page_size_;
    file_ = other.file_;
    fd_ = other.fd_;
    num_pages_ = other.num_pages_;
    pages_published_ = std::move(other.pages_published_);
    read_only_ = other.read_only_;
    freed_ = std::move(other.freed_);
    free_list_ = std::move(other.free_list_);
    stats_ = other.stats_;
    read_mu_ = std::move(other.read_mu_);
    other.file_ = nullptr;
    other.fd_ = -1;
  }
  return *this;
}

FileDiskManager::~FileDiskManager() {
  if (file_ != nullptr) std::fclose(file_);
}

PageId FileDiskManager::AllocatePage() {
  SPATIAL_CHECK(!read_only_);
  ++stats_.pages_allocated;
  if (!free_list_.empty()) {
    const PageId id = free_list_.back();
    free_list_.pop_back();
    freed_[id] = false;
    // Zero the recycled page to match DiskManager semantics.
    std::unique_ptr<char[]> zeros(new char[page_size_]());
    WritePage(id, zeros.get()).ok();
    --stats_.physical_writes;  // allocation zeroing is not user I/O
    return id;
  }
  const PageId id = num_pages_;
  SPATIAL_CHECK(id != kInvalidPageId);
  ++num_pages_;
  freed_.push_back(false);
  // Extend the file by one zero page, then publish the new count so
  // concurrent readers see the page only after it exists on disk.
  std::unique_ptr<char[]> zeros(new char[page_size_]());
  if (SeekToPage(file_, id, page_size_).ok()) {
    std::fwrite(zeros.get(), 1, page_size_, file_);
  }
  pages_published_->store(num_pages_, std::memory_order_release);
  return id;
}

Status FileDiskManager::FreePage(PageId id) {
  if (read_only_) {
    return Status::InvalidArgument("FreePage: disk is read-only");
  }
  if (id >= num_pages_) {
    return Status::InvalidArgument("FreePage: page id out of range");
  }
  if (freed_[id]) {
    return Status::InvalidArgument("FreePage: double free");
  }
  freed_[id] = true;
  free_list_.push_back(id);
  ++stats_.pages_freed;
  return Status::OK();
}

Status FileDiskManager::PositionalRead(PageId id, char* out) const {
#if defined(SPATIAL_HAVE_PREAD)
  const off_t base = static_cast<off_t>(id) * static_cast<off_t>(page_size_);
  size_t done = 0;
  while (done < page_size_) {
    const ssize_t n = ::pread(fd_, out + done, page_size_ - done,
                              base + static_cast<off_t>(done));
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::Internal("pread failed on page " + std::to_string(id));
    }
    if (n == 0) {
      return Status::Corruption("short read on page " + std::to_string(id));
    }
    done += static_cast<size_t>(n);
  }
  return Status::OK();
#else
  // Portable fallback: the shared stream offset forces serialization.
  std::lock_guard<std::mutex> lock(*read_mu_);
  SPATIAL_RETURN_IF_ERROR(SeekToPage(file_, id, page_size_));
  if (std::fread(out, 1, page_size_, file_) != page_size_) {
    return Status::Corruption("short read on page " + std::to_string(id));
  }
  return Status::OK();
#endif
}

Status FileDiskManager::ReadPage(PageId id, char* out) {
  if (id >= num_pages_ || freed_[id]) {
    return Status::InvalidArgument("ReadPage: page not allocated");
  }
  SPATIAL_RETURN_IF_ERROR(PositionalRead(id, out));
  ++stats_.physical_reads;
  return Status::OK();
}

Status FileDiskManager::ReadPageConcurrent(PageId id, char* out) const {
  // Bounds-check against the atomic mirror, not num_pages_/freed_: a
  // concurrent writer may be allocating or retiring pages, and snapshot
  // readers are entitled to fetch retired-but-unreclaimed pages.
  if (id >= pages_published_->load(std::memory_order_acquire)) {
    return Status::InvalidArgument(
        "ReadPageConcurrent: page not allocated");
  }
  return PositionalRead(id, out);
}

Status FileDiskManager::WritePage(PageId id, const char* in) {
  if (read_only_) {
    return Status::InvalidArgument("WritePage: disk is read-only");
  }
  if (id >= num_pages_ || freed_[id]) {
    return Status::InvalidArgument("WritePage: page not allocated");
  }
  SPATIAL_RETURN_IF_ERROR(SeekToPage(file_, id, page_size_));
  if (std::fwrite(in, 1, page_size_, file_) != page_size_) {
    return Status::Internal("short write on page " + std::to_string(id));
  }
  ++stats_.physical_writes;
  return Status::OK();
}

uint64_t FileDiskManager::live_pages() const {
  return num_pages_ - free_list_.size();
}

std::vector<PageId> FileDiskManager::FreeListSnapshot() const {
  return free_list_;
}

void FileDiskManager::AdoptFreeList(const std::vector<PageId>& free_ids) {
  for (const PageId id : free_ids) {
    if (id >= num_pages_ || freed_[id]) continue;  // stale entry; ignore
    freed_[id] = true;
    free_list_.push_back(id);
  }
}

Status FileDiskManager::Sync() {
  if (std::fflush(file_) != 0) {
    return Status::Internal("fflush failed: " + path_);
  }
#if defined(SPATIAL_HAVE_PREAD)
  // fsync so durability claims (WAL commit, checkpoint) hold across a
  // process crash; fflush alone only reaches the kernel page cache.
  while (::fsync(fd_) != 0) {
    if (errno == EINTR) continue;
    return Status::Internal("fsync failed: " + path_);
  }
#endif
  return Status::OK();
}

}  // namespace spatial
