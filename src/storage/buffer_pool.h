#ifndef SPATIAL_STORAGE_BUFFER_POOL_H_
#define SPATIAL_STORAGE_BUFFER_POOL_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "storage/disk.h"
#include "storage/io_stats.h"

namespace spatial {

class BufferPool;

// Frame replacement policy of the BufferPool.
enum class EvictionPolicy {
  kLru,    // least-recently-used (exact, list-based)
  kClock,  // second-chance / CLOCK (approximate LRU, O(1) metadata)
};

const char* EvictionPolicyName(EvictionPolicy policy);

// RAII pin on a buffered page. While a handle is alive, the page is pinned
// in the pool and its frame memory is stable. Move-only.
class PageHandle {
 public:
  PageHandle() = default;
  PageHandle(PageHandle&& other) noexcept { *this = std::move(other); }
  PageHandle& operator=(PageHandle&& other) noexcept;
  PageHandle(const PageHandle&) = delete;
  PageHandle& operator=(const PageHandle&) = delete;
  ~PageHandle();

  bool valid() const { return pool_ != nullptr; }
  PageId id() const { return id_; }
  char* data() { return data_; }
  const char* data() const { return data_; }

  // Marks the page dirty: it will be written back to disk on eviction/flush.
  void MarkDirty() { dirty_ = true; }

  // Explicitly release the pin before destruction.
  void Release();

 private:
  friend class BufferPool;
  PageHandle(BufferPool* pool, PageId id, char* data)
      : pool_(pool), id_(id), data_(data) {}

  BufferPool* pool_ = nullptr;
  PageId id_ = kInvalidPageId;
  char* data_ = nullptr;
  bool dirty_ = false;
};

// A fixed-capacity LRU buffer pool over any Disk implementation.
//
// Every Fetch() counts as one *logical page access* — the metric reported
// by the SIGMOD'95 experiments. Physical reads happen only on misses, so
// the buffer experiments (E7) can contrast logical and physical counts.
//
// Not thread-safe (single-threaded library, like the original testbed).
class BufferPool {
 public:
  // `capacity` is the number of page frames.
  BufferPool(Disk* disk, uint32_t capacity,
             EvictionPolicy policy = EvictionPolicy::kLru);

  BufferPool(const BufferPool&) = delete;
  BufferPool& operator=(const BufferPool&) = delete;
  ~BufferPool();

  // Pins the page in memory, reading it from disk if absent.
  // Fails with ResourceExhausted when every frame is pinned.
  Result<PageHandle> Fetch(PageId id);

  // Allocates a fresh zero-filled page on disk and pins it (dirty).
  Result<PageHandle> NewPage();

  // Frees a page on disk; the page must not be pinned. Its frame (if any)
  // is discarded without writeback.
  Status FreePage(PageId id);

  // Writes back all dirty frames.
  Status FlushAll();

  // Drops every cached frame WITHOUT writeback. Fails with InvalidArgument
  // if any frame is pinned. Used by snapshot readers when the writer's
  // checkpoint reclaims retired pages: a reused page id must not serve a
  // stale cached image, so the reader empties its (read-only, never dirty)
  // pool before adopting the new snapshot.
  Status InvalidateAll();

  Disk* disk() { return disk_; }
  uint32_t capacity() const { return capacity_; }
  EvictionPolicy policy() const { return policy_; }
  uint32_t page_size() const { return disk_->page_size(); }

  const BufferStats& stats() const { return stats_; }
  void ResetStats() { stats_.Reset(); }

  // Number of currently pinned frames (for tests / leak detection).
  uint32_t pinned_frames() const;

 private:
  friend class PageHandle;

  // Sentinel frame index terminating the intrusive LRU list.
  static constexpr uint32_t kNilFrame = 0xffffffffu;

  struct Frame {
    PageId id = kInvalidPageId;
    std::unique_ptr<char[]> data;
    uint32_t pin_count = 0;
    bool dirty = false;
    // LRU: neighbors in the intrusive evictable list (indices into
    // frames_); valid iff `evictable`. Intrusive links keep the hot
    // pin/unpin path allocation-free, unlike a node-based std::list.
    uint32_t lru_prev = kNilFrame;
    uint32_t lru_next = kNilFrame;
    bool evictable = false;
    // CLOCK: reference bit, set on every access.
    bool referenced = false;
  };

  void Unpin(PageId id, bool dirty);

  // Direct-mapped page table: frame index of `id`, or kNilFrame if the
  // page is not resident.
  uint32_t LookupFrame(PageId id) const {
    return id < page_table_.size() ? page_table_[id] : kNilFrame;
  }
  void InsertFrame(PageId id, uint32_t frame_idx);

  // Returns a free frame index, evicting if necessary.
  Result<uint32_t> GetVictimFrame();
  Result<uint32_t> EvictLru();
  Result<uint32_t> EvictClock();
  Status WriteBackAndDetach(uint32_t frame_idx);

  void MakeEvictable(uint32_t frame_idx);
  void MakeUnevictable(uint32_t frame_idx);

  Disk* disk_;
  uint32_t capacity_;
  EvictionPolicy policy_;
  uint32_t clock_hand_ = 0;
  std::vector<Frame> frames_;
  std::vector<uint32_t> free_frames_;
  // Page table as a flat array indexed by page id (ids are allocated
  // densely by the disk managers): one bounds check + one load per Fetch,
  // where a hash map costs a hash + probe on the hottest path in the
  // system. Trades O(max page id) * 4 bytes of memory — 4 MiB per million
  // pages — which is acceptable for this testbed's file sizes. Entries
  // hold a frame index or kNilFrame; grows geometrically, so a warm pool
  // performs no steady-state allocations.
  std::vector<uint32_t> page_table_;
  // Intrusive LRU list over frame indices; head = least recently used.
  uint32_t lru_head_ = kNilFrame;
  uint32_t lru_tail_ = kNilFrame;
  BufferStats stats_;
};

}  // namespace spatial

#endif  // SPATIAL_STORAGE_BUFFER_POOL_H_
