#include "storage/resident_tree.h"

#include <chrono>
#include <new>

#include "rtree/entry.h"
#include "rtree/node.h"

#if defined(__linux__)
#include <sys/mman.h>
#endif

namespace spatial {

namespace {

constexpr uint64_t kHugePageBytes = 2ull << 20;

struct ArenaAllocation {
  double* ptr = nullptr;
  uint64_t mapped_bytes = 0;  // 0 = heap
  bool hugetlb = false;
};

// One contiguous block for the whole tree. Preference order: explicit
// hugetlb mapping (guaranteed 2 MiB pages), anonymous mapping with
// transparent-hugepage advice, plain 64-byte-aligned heap memory. Every
// fallback is silent — residency is a performance tier, not a correctness
// requirement.
ArenaAllocation AllocateArena(uint64_t bytes, bool try_hugepages) {
#if defined(__linux__)
  if (try_hugepages) {
#if defined(MAP_HUGETLB)
    const uint64_t huge_bytes =
        (bytes + kHugePageBytes - 1) & ~(kHugePageBytes - 1);
    void* p = ::mmap(nullptr, huge_bytes, PROT_READ | PROT_WRITE,
                     MAP_PRIVATE | MAP_ANONYMOUS | MAP_HUGETLB, -1, 0);
    if (p != MAP_FAILED) {
      return ArenaAllocation{static_cast<double*>(p), huge_bytes, true};
    }
#endif
    // Transparent hugepages only back 2 MiB-aligned, 2 MiB-spanning
    // ranges, so over-map by one hugepage and trim the head/tail down to
    // an aligned arena; the compile pass's first touch then faults the
    // whole range in as hugepages (THP madvise mode).
    const uint64_t aligned_bytes =
        (bytes + kHugePageBytes - 1) & ~(kHugePageBytes - 1);
    void* raw = ::mmap(nullptr, aligned_bytes + kHugePageBytes,
                       PROT_READ | PROT_WRITE, MAP_PRIVATE | MAP_ANONYMOUS,
                       -1, 0);
    if (raw != MAP_FAILED) {
      const uintptr_t base = reinterpret_cast<uintptr_t>(raw);
      const uintptr_t aligned =
          (base + kHugePageBytes - 1) & ~(kHugePageBytes - 1);
      if (aligned != base) ::munmap(raw, aligned - base);
      const uintptr_t end = base + aligned_bytes + kHugePageBytes;
      if (end != aligned + aligned_bytes) {
        ::munmap(reinterpret_cast<void*>(aligned + aligned_bytes),
                 end - (aligned + aligned_bytes));
      }
      void* plain = reinterpret_cast<void*>(aligned);
#if defined(MADV_HUGEPAGE)
      (void)::madvise(plain, aligned_bytes, MADV_HUGEPAGE);
#endif
      return ArenaAllocation{static_cast<double*>(plain), aligned_bytes,
                             false};
    }
  }
#else
  (void)try_hugepages;
#endif
  return ArenaAllocation{
      static_cast<double*>(::operator new(bytes, std::align_val_t{64})), 0,
      false};
}

}  // namespace

template <int D>
void ResidentTree<D>::ArenaDelete::operator()(double* p) const {
  if (p == nullptr) return;
#if defined(__linux__)
  if (mapped_bytes != 0) {
    ::munmap(p, mapped_bytes);
    return;
  }
#endif
  ::operator delete(p, std::align_val_t{64});
}

template <int D>
Result<ResidentTree<D>> ResidentTree<D>::Compile(BufferPool* pool,
                                                 PageId root_page,
                                                 uint64_t tree_size,
                                                 const Options& options) {
  const auto start = std::chrono::steady_clock::now();
  ResidentTree tree;
  tree.source_epoch_ = options.source_epoch;
  tree.size_ = tree_size;
  const auto finish = [&start, &tree]() {
    tree.compile_ns_ = static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - start)
            .count());
  };
  if (tree_size == 0) {
    finish();
    return tree;
  }
  tree.root_page_ = root_page;

  // Pass 1: breadth-first page walk. Slot order is discovery order; the
  // page map doubles as the visited set so a corrupt child pointer cannot
  // loop the walk.
  struct NodeMeta {
    PageId page = kInvalidPageId;
    uint32_t entry_offset = 0;
    uint32_t count = 0;
    uint16_t level = 0;
  };
  std::vector<NodeMeta> metas;
  std::vector<Entry<D>> entries;
  std::vector<PageId> order;
  std::vector<uint32_t>& page_map = tree.page_map_;

  const auto enqueue = [&](PageId id) -> Status {
    if (id == kInvalidPageId) {
      return Status::Corruption("resident tree: invalid child page id");
    }
    if (id >= page_map.size()) page_map.resize(id + 1, kNoNode);
    if (page_map[id] != kNoNode) {
      return Status::Corruption("resident tree: page reachable twice");
    }
    page_map[id] = static_cast<uint32_t>(order.size());
    order.push_back(id);
    return Status::OK();
  };
  SPATIAL_RETURN_IF_ERROR(enqueue(root_page));

  uint64_t arena_doubles = 0;
  for (size_t i = 0; i < order.size(); ++i) {
    const PageId id = order[i];
    SPATIAL_ASSIGN_OR_RETURN(PageHandle handle, pool->Fetch(id));
    NodeView<D> view(handle.data(), pool->page_size());
    if (!view.has_valid_magic()) {
      return Status::Corruption("resident tree: node page has bad magic");
    }
    const uint32_t n = view.count();
    NodeMeta meta;
    meta.page = id;
    meta.entry_offset = static_cast<uint32_t>(entries.size());
    meta.count = n;
    meta.level = view.level();
    metas.push_back(meta);
    // Planes plus the node's id column padded to a cache line, so the next
    // node's plane block stays 64-byte aligned in the interleaved layout.
    arena_doubles += SoaDoubles(D, n) + ((uint64_t{n} + 7) & ~uint64_t{7});
    const size_t off = entries.size();
    entries.resize(off + n);
    view.CopyEntries(entries.data() + off);
    if (!view.is_leaf()) {
      for (uint32_t j = 0; j < n; ++j) {
        SPATIAL_RETURN_IF_ERROR(
            enqueue(static_cast<PageId>(entries[off + j].id)));
      }
    }
  }
  tree.root_level_ = metas[0].level;

  // Pass 2: lay the arena out as interleaved per-node records — each
  // node's plane block immediately followed by its id column — so a visit
  // streams one contiguous byte range instead of touching two distant
  // regions. Plane blocks are 64-byte multiples (SoaStride pads to full
  // cache lines) and each id column is padded to a cache line, so every
  // node's planes stay 64-byte aligned for the vector kernels.
  const uint64_t total_bytes = arena_doubles * sizeof(double);
  if (options.max_arena_bytes != 0 && total_bytes > options.max_arena_bytes) {
    return Status::ResourceExhausted(
        "resident tree: arena would exceed max_arena_bytes");
  }

  ArenaAllocation alloc = AllocateArena(total_bytes, options.try_hugepages);
  tree.arena_ = std::unique_ptr<double[], ArenaDelete>(
      alloc.ptr, ArenaDelete{alloc.mapped_bytes});
  tree.arena_bytes_ = total_bytes;
  tree.hugepage_backed_ = alloc.hugetlb;

  double* cursor = alloc.ptr;
  tree.nodes_.reserve(metas.size());
  for (const NodeMeta& meta : metas) {
    const Entry<D>* node_entries = entries.data() + meta.entry_offset;
    const size_t stride = SoaStride(meta.count);
    if (meta.count > 0) {
      // The same dispatched staging kernel QueryScratch::StageSoa runs per
      // visit, executed once here — which is why the resident planes are
      // bit-identical to what the paged traversal would stage.
      TransposeToSoaDispatched<D>(node_entries, meta.count, cursor, stride);
    }
    uint64_t* ids = reinterpret_cast<uint64_t*>(cursor + 2 * D * stride);
    for (uint32_t j = 0; j < meta.count; ++j) {
      ids[j] = node_entries[j].id;
    }
    ResidentNodeRef<D> ref;
    ref.planes = cursor;
    ref.ids = ids;
    ref.count = meta.count;
    ref.level = meta.level;
    tree.nodes_.push_back(ref);
    cursor += 2 * D * stride + ((uint64_t{meta.count} + 7) & ~uint64_t{7});
  }

  finish();
  return tree;
}

template class ResidentTree<2>;
template class ResidentTree<3>;
template class ResidentTree<4>;

}  // namespace spatial
