#ifndef SPATIAL_STORAGE_FAULT_INJECTOR_H_
#define SPATIAL_STORAGE_FAULT_INJECTOR_H_

#include <cstdint>

namespace spatial {

// Deterministic crash-point injection shared by FaultyDiskManager (data
// pages) and WalWriter (log appends / fsyncs). Every durable write in the
// system asks the injector for a verdict before touching the medium; the
// injector counts those operations and, once the armed operation number is
// reached, simulates a fail-stop crash: the triggering operation and every
// later one fail. The crash-matrix recovery test sweeps `fail_at_op` over
// the whole workload, so each sweep iteration dies at a different write.
//
// `torn` models a torn final WAL record: instead of dropping the
// triggering log write entirely, the writer persists only a prefix of it
// (callers of OnWrite receive kTorn exactly once; every later op fails).
// Page-granular data writes treat kTorn as kFailStop — the durability
// design assumes sector-atomic superblock writes (docs/DURABILITY.md), so
// a torn *page* never reaches the recovery path.
//
// Not thread-safe; the write path is single-threaded by design.
class FaultInjector {
 public:
  enum class Action {
    kOk,        // perform the write
    kTorn,      // persist a prefix of the write, then fail
    kFailStop,  // perform nothing; the "process" is dead
  };

  // Counting mode (fail_at_op == 0, the default): never fails, just counts.
  // A baseline run in counting mode measures the total number of durable
  // operations a workload performs, which bounds the crash matrix.
  void Arm(uint64_t fail_at_op, bool torn = false) {
    fail_at_op_ = fail_at_op;
    torn_ = torn;
    ops_ = 0;
    tripped_ = false;
  }

  // Verdict for the next durable operation.
  Action OnWrite() {
    ++ops_;
    if (tripped_) return Action::kFailStop;
    if (fail_at_op_ != 0 && ops_ >= fail_at_op_) {
      tripped_ = true;
      return torn_ ? Action::kTorn : Action::kFailStop;
    }
    return Action::kOk;
  }

  uint64_t ops_seen() const { return ops_; }
  bool tripped() const { return tripped_; }

 private:
  uint64_t fail_at_op_ = 0;
  bool torn_ = false;
  uint64_t ops_ = 0;
  bool tripped_ = false;
};

}  // namespace spatial

#endif  // SPATIAL_STORAGE_FAULT_INJECTOR_H_
