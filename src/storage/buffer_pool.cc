#include "storage/buffer_pool.h"

#include <algorithm>
#include <cstring>

#include "common/macros.h"

namespace spatial {

const char* EvictionPolicyName(EvictionPolicy policy) {
  switch (policy) {
    case EvictionPolicy::kLru:
      return "lru";
    case EvictionPolicy::kClock:
      return "clock";
  }
  return "unknown";
}

PageHandle& PageHandle::operator=(PageHandle&& other) noexcept {
  if (this != &other) {
    Release();
    pool_ = other.pool_;
    id_ = other.id_;
    data_ = other.data_;
    dirty_ = other.dirty_;
    other.pool_ = nullptr;
    other.data_ = nullptr;
    other.id_ = kInvalidPageId;
    other.dirty_ = false;
  }
  return *this;
}

PageHandle::~PageHandle() { Release(); }

void PageHandle::Release() {
  if (pool_ != nullptr) {
    pool_->Unpin(id_, dirty_);
    pool_ = nullptr;
    data_ = nullptr;
    id_ = kInvalidPageId;
    dirty_ = false;
  }
}

BufferPool::BufferPool(Disk* disk, uint32_t capacity,
                       EvictionPolicy policy)
    : disk_(disk), capacity_(capacity), policy_(policy) {
  SPATIAL_CHECK(disk_ != nullptr);
  SPATIAL_CHECK(capacity_ >= 1);
  frames_.resize(capacity_);
  free_frames_.reserve(capacity_);
  for (uint32_t i = 0; i < capacity_; ++i) {
    frames_[i].data = std::make_unique<char[]>(disk_->page_size());
    free_frames_.push_back(capacity_ - 1 - i);  // hand out frame 0 first
  }
}

BufferPool::~BufferPool() {
  // Best-effort writeback; errors here indicate disk teardown races that
  // cannot happen with the in-memory DiskManager.
  FlushAll().ok();
}

Result<PageHandle> BufferPool::Fetch(PageId id) {
  if (id == kInvalidPageId) {
    return Status::InvalidArgument("Fetch: invalid page id");
  }
  ++stats_.logical_fetches;
  const uint32_t resident = LookupFrame(id);
  if (resident != kNilFrame) {
    ++stats_.hits;
    const uint32_t idx = resident;
    Frame& frame = frames_[idx];
    if (frame.pin_count == 0) MakeUnevictable(idx);
    ++frame.pin_count;
    frame.referenced = true;
    return PageHandle(this, id, frame.data.get());
  }
  ++stats_.misses;
  SPATIAL_ASSIGN_OR_RETURN(const uint32_t idx, GetVictimFrame());
  Frame& frame = frames_[idx];
  Status read = disk_->ReadPage(id, frame.data.get());
  if (!read.ok()) {
    free_frames_.push_back(idx);
    return read;
  }
  frame.id = id;
  frame.pin_count = 1;
  frame.dirty = false;
  frame.referenced = true;
  InsertFrame(id, idx);
  return PageHandle(this, id, frame.data.get());
}

Result<PageHandle> BufferPool::NewPage() {
  SPATIAL_ASSIGN_OR_RETURN(const uint32_t idx, GetVictimFrame());
  const PageId id = disk_->AllocatePage();
  Frame& frame = frames_[idx];
  frame.id = id;
  frame.pin_count = 1;
  frame.dirty = true;
  frame.referenced = true;
  std::memset(frame.data.get(), 0, disk_->page_size());
  InsertFrame(id, idx);
  return PageHandle(this, id, frame.data.get());
}

Status BufferPool::FreePage(PageId id) {
  const uint32_t idx = LookupFrame(id);
  if (idx != kNilFrame) {
    Frame& frame = frames_[idx];
    if (frame.pin_count > 0) {
      return Status::InvalidArgument("FreePage: page is pinned");
    }
    MakeUnevictable(idx);
    frame.id = kInvalidPageId;
    frame.dirty = false;
    page_table_[id] = kNilFrame;
    free_frames_.push_back(idx);
  }
  return disk_->FreePage(id);
}

Status BufferPool::FlushAll() {
  for (Frame& frame : frames_) {
    if (frame.id != kInvalidPageId && frame.dirty) {
      SPATIAL_RETURN_IF_ERROR(disk_->WritePage(frame.id, frame.data.get()));
      frame.dirty = false;
    }
  }
  return Status::OK();
}

Status BufferPool::InvalidateAll() {
  if (pinned_frames() > 0) {
    return Status::InvalidArgument(
        "InvalidateAll: pool has pinned frames");
  }
  free_frames_.clear();
  for (uint32_t i = 0; i < capacity_; ++i) {
    Frame& frame = frames_[i];
    if (frame.id != kInvalidPageId) {
      page_table_[frame.id] = kNilFrame;
      if (frame.evictable) MakeUnevictable(i);
      frame.id = kInvalidPageId;
      frame.dirty = false;
      frame.referenced = false;
    }
    free_frames_.push_back(capacity_ - 1 - i);  // same order as construction
  }
  SPATIAL_DCHECK(lru_head_ == kNilFrame && lru_tail_ == kNilFrame);
  clock_hand_ = 0;
  return Status::OK();
}

uint32_t BufferPool::pinned_frames() const {
  uint32_t pinned = 0;
  for (const Frame& frame : frames_) {
    if (frame.id != kInvalidPageId && frame.pin_count > 0) ++pinned;
  }
  return pinned;
}

void BufferPool::Unpin(PageId id, bool dirty) {
  const uint32_t idx = LookupFrame(id);
  SPATIAL_CHECK(idx != kNilFrame);
  Frame& frame = frames_[idx];
  SPATIAL_CHECK(frame.pin_count > 0);
  frame.dirty = frame.dirty || dirty;
  --frame.pin_count;
  if (frame.pin_count == 0) MakeEvictable(idx);
}

Result<uint32_t> BufferPool::GetVictimFrame() {
  if (!free_frames_.empty()) {
    const uint32_t idx = free_frames_.back();
    free_frames_.pop_back();
    return idx;
  }
  return policy_ == EvictionPolicy::kLru ? EvictLru() : EvictClock();
}

Result<uint32_t> BufferPool::EvictLru() {
  if (lru_head_ == kNilFrame) {
    return Status::ResourceExhausted(
        "buffer pool: all frames pinned; cannot evict");
  }
  const uint32_t idx = lru_head_;
  SPATIAL_DCHECK(frames_[idx].pin_count == 0);
  MakeUnevictable(idx);
  SPATIAL_RETURN_IF_ERROR(WriteBackAndDetach(idx));
  return idx;
}

Result<uint32_t> BufferPool::EvictClock() {
  // Second-chance sweep: give each referenced frame one pass of grace.
  // Two full revolutions guarantee progress or prove exhaustion.
  for (uint32_t step = 0; step < 2 * capacity_; ++step) {
    const uint32_t idx = clock_hand_;
    clock_hand_ = (clock_hand_ + 1) % capacity_;
    Frame& frame = frames_[idx];
    if (frame.id == kInvalidPageId || frame.pin_count > 0) continue;
    if (frame.referenced) {
      frame.referenced = false;
      continue;
    }
    SPATIAL_RETURN_IF_ERROR(WriteBackAndDetach(idx));
    return idx;
  }
  return Status::ResourceExhausted(
      "buffer pool: all frames pinned; cannot evict");
}

// Writes back a dirty victim and removes it from the page table.
Status BufferPool::WriteBackAndDetach(uint32_t frame_idx) {
  Frame& frame = frames_[frame_idx];
  if (frame.dirty) {
    SPATIAL_RETURN_IF_ERROR(disk_->WritePage(frame.id, frame.data.get()));
    ++stats_.dirty_writebacks;
  }
  page_table_[frame.id] = kNilFrame;
  frame.id = kInvalidPageId;
  frame.dirty = false;
  frame.referenced = false;
  ++stats_.evictions;
  return Status::OK();
}

// Grows the table geometrically so that repeated appends of fresh page ids
// stay amortized O(1), then records the mapping.
void BufferPool::InsertFrame(PageId id, uint32_t frame_idx) {
  if (id >= page_table_.size()) {
    const size_t grown = std::max<size_t>(size_t{id} + 1,
                                          2 * page_table_.size());
    page_table_.resize(grown, kNilFrame);
  }
  page_table_[id] = frame_idx;
}

// Appends the frame at the most-recently-used end of the intrusive list.
void BufferPool::MakeEvictable(uint32_t frame_idx) {
  if (policy_ != EvictionPolicy::kLru) return;  // CLOCK uses pin counts only
  Frame& frame = frames_[frame_idx];
  SPATIAL_DCHECK(!frame.evictable);
  frame.lru_prev = lru_tail_;
  frame.lru_next = kNilFrame;
  if (lru_tail_ != kNilFrame) {
    frames_[lru_tail_].lru_next = frame_idx;
  } else {
    lru_head_ = frame_idx;
  }
  lru_tail_ = frame_idx;
  frame.evictable = true;
}

void BufferPool::MakeUnevictable(uint32_t frame_idx) {
  if (policy_ != EvictionPolicy::kLru) return;
  Frame& frame = frames_[frame_idx];
  if (!frame.evictable) return;
  if (frame.lru_prev != kNilFrame) {
    frames_[frame.lru_prev].lru_next = frame.lru_next;
  } else {
    lru_head_ = frame.lru_next;
  }
  if (frame.lru_next != kNilFrame) {
    frames_[frame.lru_next].lru_prev = frame.lru_prev;
  } else {
    lru_tail_ = frame.lru_prev;
  }
  frame.lru_prev = kNilFrame;
  frame.lru_next = kNilFrame;
  frame.evictable = false;
}

}  // namespace spatial
