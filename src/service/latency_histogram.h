#ifndef SPATIAL_SERVICE_LATENCY_HISTOGRAM_H_
#define SPATIAL_SERVICE_LATENCY_HISTOGRAM_H_

#include <atomic>
#include <cstdint>

#include "common/macros.h"

namespace spatial {

// Latency bookkeeping for the query service, in two pieces:
//
//   * LatencyHistogram — one per worker thread. Record() is two relaxed
//     atomic increments on thread-private cache lines: lock-free and
//     uncontended (only the owning worker writes; aggregators only read).
//   * LatencySnapshot  — a plain-value copy used for aggregation across
//     workers (operator+=) and percentile extraction.
//
// Buckets are powers of two of nanoseconds (bucket b covers [2^(b-1), 2^b)
// ns), so percentiles carry at most a 2x quantization error — plenty for
// p50/p95/p99 reporting, and the fixed layout keeps Record() branch-free.
inline constexpr int kLatencyBuckets = 64;

struct LatencySnapshot {
  uint64_t counts[kLatencyBuckets] = {};
  uint64_t total_count = 0;
  uint64_t total_ns = 0;
  uint64_t max_ns = 0;

  LatencySnapshot& operator+=(const LatencySnapshot& other) {
    for (int i = 0; i < kLatencyBuckets; ++i) counts[i] += other.counts[i];
    total_count += other.total_count;
    total_ns += other.total_ns;
    if (other.max_ns > max_ns) max_ns = other.max_ns;
    return *this;
  }

  // Upper bound of the bucket containing the p-th percentile observation
  // (p in [0, 1]); 0 when empty.
  uint64_t PercentileNs(double p) const {
    if (total_count == 0) return 0;
    if (p < 0.0) p = 0.0;
    if (p > 1.0) p = 1.0;
    // Rank of the percentile observation, 1-based ceiling.
    uint64_t rank = static_cast<uint64_t>(p * static_cast<double>(total_count));
    if (rank == 0) rank = 1;
    uint64_t seen = 0;
    for (int b = 0; b < kLatencyBuckets; ++b) {
      seen += counts[b];
      if (seen >= rank) {
        // Upper bound of bucket b (which covers [2^(b-1), 2^b) ns); the
        // overflow bucket reports the true maximum instead.
        return b >= kLatencyBuckets - 1 ? max_ns : (uint64_t{1} << b) - 1;
      }
    }
    return max_ns;
  }

  double MeanNs() const {
    return total_count == 0
               ? 0.0
               : static_cast<double>(total_ns) /
                     static_cast<double>(total_count);
  }
};

class LatencyHistogram {
 public:
  LatencyHistogram() = default;
  LatencyHistogram(const LatencyHistogram&) = delete;
  LatencyHistogram& operator=(const LatencyHistogram&) = delete;

  // Called by the owning worker only.
  void Record(uint64_t ns) {
    const int bucket = Bucket(ns);
    counts_[bucket].fetch_add(1, std::memory_order_relaxed);
    total_ns_.fetch_add(ns, std::memory_order_relaxed);
    // Monotonic max; only the owner writes, so a plain store after compare
    // would do, but CAS keeps the class correct if ownership rules change.
    uint64_t prev = max_ns_.load(std::memory_order_relaxed);
    while (ns > prev &&
           !max_ns_.compare_exchange_weak(prev, ns,
                                          std::memory_order_relaxed)) {
    }
  }

  // Safe from any thread at any time (relaxed reads: the snapshot is a
  // consistent-enough view for monitoring, exact once the worker is idle).
  LatencySnapshot Snapshot() const {
    LatencySnapshot s;
    for (int i = 0; i < kLatencyBuckets; ++i) {
      s.counts[i] = counts_[i].load(std::memory_order_relaxed);
      s.total_count += s.counts[i];
    }
    s.total_ns = total_ns_.load(std::memory_order_relaxed);
    s.max_ns = max_ns_.load(std::memory_order_relaxed);
    return s;
  }

  void Reset() {
    for (int i = 0; i < kLatencyBuckets; ++i) {
      counts_[i].store(0, std::memory_order_relaxed);
    }
    total_ns_.store(0, std::memory_order_relaxed);
    max_ns_.store(0, std::memory_order_relaxed);
  }

 private:
  // Index of the highest set bit + 1 (0 maps to bucket 0): bucket b holds
  // durations in [2^(b-1), 2^b) ns.
  static int Bucket(uint64_t ns) {
    int b = 0;
    while (ns != 0 && b < kLatencyBuckets - 1) {
      ns >>= 1;
      ++b;
    }
    return b;
  }

  std::atomic<uint64_t> counts_[kLatencyBuckets] = {};
  std::atomic<uint64_t> total_ns_{0};
  std::atomic<uint64_t> max_ns_{0};
};

}  // namespace spatial

#endif  // SPATIAL_SERVICE_LATENCY_HISTOGRAM_H_
