#ifndef SPATIAL_SERVICE_REQUEST_QUEUE_H_
#define SPATIAL_SERVICE_REQUEST_QUEUE_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <optional>
#include <utility>

#include "common/macros.h"

namespace spatial {

// Bounded blocking MPMC queue: any number of producers call Push (blocking
// while the queue is full, for natural backpressure), any number of
// consumers call Pop (blocking while empty). Close() wakes everyone;
// remaining items are still drained, then Pop returns nullopt and Push
// returns false. Mutex + two condvars — the queue is crossed once per
// query, so a fancier lock-free design would be noise next to the query
// itself (microseconds of tree traversal).
template <typename T>
class RequestQueue {
 public:
  explicit RequestQueue(size_t capacity) : capacity_(capacity) {
    SPATIAL_CHECK(capacity >= 1);
  }

  RequestQueue(const RequestQueue&) = delete;
  RequestQueue& operator=(const RequestQueue&) = delete;

  // Returns false iff the queue is closed; `item` is moved from only on
  // success, so a failed Push leaves it intact for the caller to handle.
  bool Push(T&& item) {
    std::unique_lock<std::mutex> lock(mu_);
    not_full_.wait(lock,
                   [this] { return closed_ || items_.size() < capacity_; });
    if (closed_) return false;
    items_.push_back(std::move(item));
    lock.unlock();
    not_empty_.notify_one();
    return true;
  }

  // Blocks until an item is available or the queue is closed and empty.
  std::optional<T> Pop() {
    std::unique_lock<std::mutex> lock(mu_);
    not_empty_.wait(lock, [this] { return closed_ || !items_.empty(); });
    if (items_.empty()) return std::nullopt;  // closed and drained
    T item = std::move(items_.front());
    items_.pop_front();
    lock.unlock();
    not_full_.notify_one();
    return item;
  }

  // Non-blocking Pop: an item if one is ready, nullopt otherwise (empty or
  // closed-and-drained). The writer thread's group-commit loop uses this
  // to batch everything already queued without waiting for more.
  std::optional<T> TryPop() {
    std::unique_lock<std::mutex> lock(mu_);
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    lock.unlock();
    not_full_.notify_one();
    return item;
  }

  void Close() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      closed_ = true;
    }
    not_empty_.notify_all();
    not_full_.notify_all();
  }

  size_t size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return items_.size();
  }

 private:
  const size_t capacity_;
  mutable std::mutex mu_;
  std::condition_variable not_full_;
  std::condition_variable not_empty_;
  std::deque<T> items_;
  bool closed_ = false;
};

}  // namespace spatial

#endif  // SPATIAL_SERVICE_REQUEST_QUEUE_H_
