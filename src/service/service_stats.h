#ifndef SPATIAL_SERVICE_SERVICE_STATS_H_
#define SPATIAL_SERVICE_SERVICE_STATS_H_

#include <cstdint>

#include "core/query_stats.h"
#include "obs/histogram.h"
#include "storage/io_stats.h"

namespace spatial {

// Aggregated view over every worker of a QueryService: the per-worker
// IoStats (physical reads through the private disk views), BufferStats
// (logical fetches — the paper's "page accesses"), algorithm counters, and
// the merged latency distribution. Produced by QueryService::Snapshot()
// (of which Stats() is the historical spelling) — safe to take live while
// workers run; every source cell is a relaxed-atomic single-writer
// counter, so a concurrent snapshot is torn at worst across counters,
// never within one.
struct ServiceStats {
  uint32_t workers = 0;
  uint64_t queries_ok = 0;
  uint64_t queries_failed = 0;
  double elapsed_seconds = 0.0;  // since service start (or ResetStats)

  // Serving mode (OpenServing) only; zero on read-only services.
  uint64_t writes_ok = 0;
  uint64_t writes_failed = 0;
  uint64_t checkpoints = 0;

  // Resident fast path (docs/PERF.md "Resident tier"); all zero when the
  // tier is disabled. Hits/fallbacks count only resident-eligible kinds —
  // the ones kQueryKindTable (service/request.h) marks resident_eligible.
  uint64_t resident_hits = 0;
  uint64_t resident_fallbacks = 0;
  uint64_t resident_compiles = 0;
  uint64_t resident_invalidations = 0;
  uint64_t resident_arena_bytes = 0;  // currently published arena (gauge)
  uint32_t resident_nodes = 0;        // nodes in the published arena

  IoStats io;          // summed over worker disk views
  BufferStats buffer;  // summed over worker buffer pools
  QueryStats query;    // summed over all executed queries
  LatencySnapshot latency;
  LatencySnapshot queue_wait;  // submit → worker dequeue

  uint64_t TotalQueries() const { return queries_ok + queries_failed; }

  double QueriesPerSecond() const {
    return elapsed_seconds <= 0.0
               ? 0.0
               : static_cast<double>(TotalQueries()) / elapsed_seconds;
  }

  // The paper's headline metric, now observable under concurrent load.
  double PageAccessesPerQuery() const {
    return TotalQueries() == 0
               ? 0.0
               : static_cast<double>(buffer.logical_fetches) /
                     static_cast<double>(TotalQueries());
  }

  double PhysicalReadsPerQuery() const {
    return TotalQueries() == 0
               ? 0.0
               : static_cast<double>(io.physical_reads) /
                     static_cast<double>(TotalQueries());
  }
};

}  // namespace spatial

#endif  // SPATIAL_SERVICE_SERVICE_STATS_H_
