#ifndef SPATIAL_SERVICE_REQUEST_H_
#define SPATIAL_SERVICE_REQUEST_H_

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "core/knn.h"
#include "core/neighbor_buffer.h"
#include "core/query_stats.h"
#include "geom/point.h"
#include "geom/rect.h"
#include "rtree/entry.h"

namespace spatial {

// The request kinds the service executes. The query kinds work against any
// service; the write kinds (kInsert / kDelete / kCheckpoint) need a service
// opened in serving mode (OpenServing), where a single writer thread logs
// them to the WAL and publishes snapshot-isolated tree versions — on a
// read-only service they fail immediately (see docs/SERVICE.md and
// docs/DURABILITY.md).
enum class QueryKind {
  kKnn,             // k nearest neighbors (SIGMOD'95 branch-and-bound)
  kConstrainedKnn,  // k nearest within a region
  kRange,           // all entries intersecting a window
  kTopK,            // k nearest via the incremental (distance-browsing) scan
  kBatchKnn,        // many kNN queries answered in one worker pass
  kInsert,          // durably insert (window = MBR, object_id = id)
  kDelete,          // durably delete one exact (window, object_id) match
  kCheckpoint,      // fold the WAL into the base file now
};

// Size of the enum, for per-kind stat shards (metrics registry).
inline constexpr int kNumQueryKinds =
    static_cast<int>(QueryKind::kCheckpoint) + 1;

const char* QueryKindName(QueryKind kind);

inline bool IsWriteKind(QueryKind kind) {
  return kind == QueryKind::kInsert || kind == QueryKind::kDelete ||
         kind == QueryKind::kCheckpoint;
}

// One query. Which fields matter depends on `kind`; the factory functions
// below construct well-formed requests for each kind.
template <int D>
struct QueryRequest {
  QueryKind kind = QueryKind::kKnn;
  Point<D> query{};                    // kKnn / kConstrainedKnn / kTopK
  Rect<D> window = Rect<D>::Empty();   // kConstrainedKnn region, kRange
  KnnOptions knn;                      // kKnn / kConstrainedKnn / kBatchKnn
  uint32_t top_k = 1;                  // kTopK result count
  std::vector<Point<D>> batch_queries;  // kBatchKnn query points
  uint64_t object_id = 0;              // kInsert / kDelete object id

  static QueryRequest Knn(const Point<D>& q, uint32_t k) {
    QueryRequest r;
    r.kind = QueryKind::kKnn;
    r.query = q;
    r.knn.k = k;
    return r;
  }

  static QueryRequest ConstrainedKnn(const Point<D>& q, const Rect<D>& region,
                                     uint32_t k) {
    QueryRequest r;
    r.kind = QueryKind::kConstrainedKnn;
    r.query = q;
    r.window = region;
    r.knn.k = k;
    return r;
  }

  static QueryRequest Range(const Rect<D>& window) {
    QueryRequest r;
    r.kind = QueryKind::kRange;
    r.window = window;
    return r;
  }

  static QueryRequest TopK(const Point<D>& q, uint32_t k) {
    QueryRequest r;
    r.kind = QueryKind::kTopK;
    r.query = q;
    r.top_k = k;
    return r;
  }

  // All queries share one k and one traversal through the worker's scratch
  // arena; the response packs per-query slices CSR-style (batch_offsets).
  static QueryRequest BatchKnn(std::vector<Point<D>> queries, uint32_t k) {
    QueryRequest r;
    r.kind = QueryKind::kBatchKnn;
    r.batch_queries = std::move(queries);
    r.knn.k = k;
    return r;
  }

  // Durable writes (serving mode only). The response's future resolves
  // once the op is on disk — an OK status IS the durability ack.
  static QueryRequest Insert(const Rect<D>& mbr, uint64_t id) {
    QueryRequest r;
    r.kind = QueryKind::kInsert;
    r.window = mbr;
    r.object_id = id;
    return r;
  }

  static QueryRequest Delete(const Rect<D>& mbr, uint64_t id) {
    QueryRequest r;
    r.kind = QueryKind::kDelete;
    r.window = mbr;
    r.object_id = id;
    return r;
  }

  static QueryRequest Checkpoint() {
    QueryRequest r;
    r.kind = QueryKind::kCheckpoint;
    return r;
  }
};

// The answer to one request. `neighbors` is filled for the k-NN kinds,
// `entries` for range queries. `stats` carries the paper's per-query
// counters (nodes_visited == page accesses); `latency_ns` is wall time
// inside the worker, excluding queue wait.
//
// For kBatchKnn, `neighbors` concatenates every query's results and
// `batch_offsets` delimits them: query i owns neighbors
// [batch_offsets[i], batch_offsets[i + 1]). `stats` sums over the batch.
template <int D>
struct QueryResponse {
  Status status;
  std::vector<Neighbor> neighbors;
  std::vector<Entry<D>> entries;
  std::vector<uint32_t> batch_offsets;
  QueryStats stats;
  uint64_t latency_ns = 0;
  uint32_t worker_id = 0;
  // Write kinds: the op's log sequence number, and 1 when it took effect
  // (inserts always do; a delete counts only an exact match).
  uint64_t lsn = 0;
  uint64_t affected = 0;

  bool ok() const { return status.ok(); }
};

}  // namespace spatial

#endif  // SPATIAL_SERVICE_REQUEST_H_
