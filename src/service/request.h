#ifndef SPATIAL_SERVICE_REQUEST_H_
#define SPATIAL_SERVICE_REQUEST_H_

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "core/knn.h"
#include "core/neighbor_buffer.h"
#include "core/query_stats.h"
#include "geom/point.h"
#include "geom/rect.h"
#include "obs/slow_query_log.h"
#include "rtree/entry.h"

namespace spatial {

// The request kinds the service executes. The query kinds work against any
// service; the write kinds (kInsert / kDelete / kCheckpoint) need a service
// opened in serving mode (OpenServing), where a single writer thread logs
// them to the WAL and publishes snapshot-isolated tree versions — on a
// read-only service they fail immediately (see docs/SERVICE.md and
// docs/DURABILITY.md).
enum class QueryKind {
  kKnn,             // k nearest neighbors (SIGMOD'95 branch-and-bound)
  kConstrainedKnn,  // k nearest within a region
  kRange,           // all entries intersecting a window
  kTopK,            // k nearest via the incremental (distance-browsing) scan
  kBatchKnn,        // many kNN queries answered in one worker pass
  kInsert,          // durably insert (window = MBR, object_id = id)
  kDelete,          // durably delete one exact (window, object_id) match
  kCheckpoint,      // fold the WAL into the base file now
  // Later kinds append below so existing wire bytes keep their meaning
  // (net/wire.h kWireVersion gates cross-version handshakes).
  kReverseKnn,      // reverse k-NN: objects that count q among their k-NN
  kNnSkyline,       // NN skyline over the batch_queries source points
  kApproxKnn,       // epsilon/budget-relaxed kNN (knn.epsilon, max_visits)
};

// Size of the enum, for per-kind stat shards (metrics registry).
inline constexpr int kNumQueryKinds =
    static_cast<int>(QueryKind::kApproxKnn) + 1;

// The kind table: one row per enum member, indexed by the enum value. The
// static_asserts below force this table, kNumQueryKinds, and the per-kind
// metric arrays it sizes (service/query_service.h, shard/shard_router.h)
// to move together — adding an enum member without a row, or reordering
// rows, fails the build instead of silently desynchronizing stat shards.
struct QueryKindInfo {
  QueryKind kind;
  const char* name;        // metric label (hyphenated; exposition folds)
  bool is_write;           // needs a serving-mode (writer) service
  bool resident_eligible;  // can be answered by the resident tree tier
};

inline constexpr QueryKindInfo kQueryKindTable[] = {
    {QueryKind::kKnn, "knn", false, true},
    {QueryKind::kConstrainedKnn, "constrained-knn", false, false},
    {QueryKind::kRange, "range", false, false},
    {QueryKind::kTopK, "top-k", false, true},
    {QueryKind::kBatchKnn, "batch-knn", false, true},
    {QueryKind::kInsert, "insert", true, false},
    {QueryKind::kDelete, "delete", true, false},
    {QueryKind::kCheckpoint, "checkpoint", true, false},
    {QueryKind::kReverseKnn, "reverse-knn", false, true},
    {QueryKind::kNnSkyline, "nn-skyline", false, true},
    {QueryKind::kApproxKnn, "approx-knn", false, true},
};

static_assert(sizeof(kQueryKindTable) / sizeof(kQueryKindTable[0]) ==
                  kNumQueryKinds,
              "kQueryKindTable must have exactly one row per QueryKind");

namespace internal {
constexpr bool QueryKindTableAligned() {
  for (int i = 0; i < kNumQueryKinds; ++i) {
    if (static_cast<int>(kQueryKindTable[i].kind) != i) return false;
  }
  return true;
}
}  // namespace internal

static_assert(internal::QueryKindTableAligned(),
              "kQueryKindTable rows must be in enum order");

inline const char* QueryKindName(QueryKind kind) {
  const int i = static_cast<int>(kind);
  if (i < 0 || i >= kNumQueryKinds) return "unknown";
  return kQueryKindTable[i].name;
}

inline bool IsWriteKind(QueryKind kind) {
  const int i = static_cast<int>(kind);
  if (i < 0 || i >= kNumQueryKinds) return false;
  return kQueryKindTable[i].is_write;
}

// True for kinds the resident tree tier can serve (query_service.cc
// routes these through the compiled arena when it is fresh).
inline bool IsResidentEligible(QueryKind kind) {
  const int i = static_cast<int>(kind);
  if (i < 0 || i >= kNumQueryKinds) return false;
  return kQueryKindTable[i].resident_eligible;
}

// One query. Which fields matter depends on `kind`; the factory functions
// below construct well-formed requests for each kind.
template <int D>
struct QueryRequest {
  QueryKind kind = QueryKind::kKnn;
  Point<D> query{};                    // kKnn-family / kTopK / kReverseKnn
  Rect<D> window = Rect<D>::Empty();   // kConstrainedKnn region, kRange
  KnnOptions knn;                      // kKnn-family (k, max_distance,
                                       // epsilon, max_visits), kReverseKnn k
  uint32_t top_k = 1;                  // kTopK result count
  std::vector<Point<D>> batch_queries;  // kBatchKnn queries, kNnSkyline
                                        // source points
  uint64_t object_id = 0;              // kInsert / kDelete object id
  // kReverseKnn scatter support: stop after sector candidate generation
  // and return the candidates (with geometry) as `entries` — the shard
  // router verifies them against the global tree itself.
  bool rknn_candidates_only = false;

  // Distributed trace context (wire v3, docs/OBSERVABILITY.md). A nonzero
  // trace_id with trace_sampled set forces the executing service to trace
  // this query regardless of its own sampling rate and to return its
  // QueryTraceRecord in the response — the shard router stamps these into
  // every scattered copy of a sampled request and assembles the returned
  // records into one cross-shard trace.
  uint64_t trace_id = 0;        // 0 = not part of a distributed trace
  uint64_t parent_span_id = 0;  // the router's root span (0 at the root)
  bool trace_sampled = false;   // force-sample + return the trace record
  // Deadline hint: the remaining time the caller will wait, 0 = none.
  // The RPC server sheds a request whose budget has already elapsed on
  // arrival as kOverloaded before any shard sees it (a caller that knows
  // its deadline passed sends 1 to make that explicit).
  uint64_t deadline_budget_ns = 0;

  static QueryRequest Knn(const Point<D>& q, uint32_t k) {
    QueryRequest r;
    r.kind = QueryKind::kKnn;
    r.query = q;
    r.knn.k = k;
    return r;
  }

  static QueryRequest ConstrainedKnn(const Point<D>& q, const Rect<D>& region,
                                     uint32_t k) {
    QueryRequest r;
    r.kind = QueryKind::kConstrainedKnn;
    r.query = q;
    r.window = region;
    r.knn.k = k;
    return r;
  }

  static QueryRequest Range(const Rect<D>& window) {
    QueryRequest r;
    r.kind = QueryKind::kRange;
    r.window = window;
    return r;
  }

  static QueryRequest TopK(const Point<D>& q, uint32_t k) {
    QueryRequest r;
    r.kind = QueryKind::kTopK;
    r.query = q;
    r.top_k = k;
    return r;
  }

  // All queries share one k and one traversal through the worker's scratch
  // arena; the response packs per-query slices CSR-style (batch_offsets).
  static QueryRequest BatchKnn(std::vector<Point<D>> queries, uint32_t k) {
    QueryRequest r;
    r.kind = QueryKind::kBatchKnn;
    r.batch_queries = std::move(queries);
    r.knn.k = k;
    return r;
  }

  // Reverse k-NN: the objects that would include q in their own k-NN
  // answer (ties included). 2-D services only — others answer
  // kInvalidArgument (the sector construction is planar).
  static QueryRequest ReverseKnn(const Point<D>& q, uint32_t k) {
    QueryRequest r;
    r.kind = QueryKind::kReverseKnn;
    r.query = q;
    r.knn.k = k;
    return r;
  }

  // NN skyline over >= 1 source points (core/skyline.h): results arrive
  // as `entries` sorted by ascending (distance-sum, id).
  static QueryRequest NnSkyline(std::vector<Point<D>> sources) {
    QueryRequest r;
    r.kind = QueryKind::kNnSkyline;
    r.batch_queries = std::move(sources);
    return r;
  }

  // Approximate kNN: prunes at bound/(1+epsilon)^2 (every answer within
  // (1+epsilon) of the true distance) and optionally stops after
  // max_visits node visits (no distance contract; recall is measured —
  // see docs/QUERIES.md). epsilon = 0, max_visits = 0 is exact.
  static QueryRequest ApproxKnn(const Point<D>& q, uint32_t k, double epsilon,
                                uint64_t max_visits = 0) {
    QueryRequest r;
    r.kind = QueryKind::kApproxKnn;
    r.query = q;
    r.knn.k = k;
    r.knn.epsilon = epsilon;
    r.knn.max_visits = max_visits;
    return r;
  }

  // Durable writes (serving mode only). The response's future resolves
  // once the op is on disk — an OK status IS the durability ack.
  static QueryRequest Insert(const Rect<D>& mbr, uint64_t id) {
    QueryRequest r;
    r.kind = QueryKind::kInsert;
    r.window = mbr;
    r.object_id = id;
    return r;
  }

  static QueryRequest Delete(const Rect<D>& mbr, uint64_t id) {
    QueryRequest r;
    r.kind = QueryKind::kDelete;
    r.window = mbr;
    r.object_id = id;
    return r;
  }

  static QueryRequest Checkpoint() {
    QueryRequest r;
    r.kind = QueryKind::kCheckpoint;
    return r;
  }
};

// The answer to one request. `neighbors` is filled for the k-NN kinds,
// `entries` for range queries. `stats` carries the paper's per-query
// counters (nodes_visited == page accesses); `latency_ns` is wall time
// inside the worker, excluding queue wait.
//
// For kBatchKnn, `neighbors` concatenates every query's results and
// `batch_offsets` delimits them: query i owns neighbors
// [batch_offsets[i], batch_offsets[i + 1]). `stats` sums over the batch.
template <int D>
struct QueryResponse {
  Status status;
  std::vector<Neighbor> neighbors;
  std::vector<Entry<D>> entries;
  std::vector<uint32_t> batch_offsets;
  QueryStats stats;
  uint64_t latency_ns = 0;
  uint32_t worker_id = 0;
  // Write kinds: the op's log sequence number, and 1 when it took effect
  // (inserts always do; a delete counts only an exact match).
  uint64_t lsn = 0;
  uint64_t affected = 0;
  // Sampled tracing: the worker's capture of this query (full QueryStats,
  // per-level node counts, queue-wait/execute spans), filled whenever the
  // query was traced — by the service's own sampling draw or the
  // request's propagated trace_sampled flag. Fixed-size POD, so carrying
  // it keeps the response allocation-free; the wire codec only encodes it
  // when has_trace is set.
  bool has_trace = false;
  obs::QueryTraceRecord trace;

  bool ok() const { return status.ok(); }
};

}  // namespace spatial

#endif  // SPATIAL_SERVICE_REQUEST_H_
