#ifndef SPATIAL_SERVICE_QUERY_SERVICE_H_
#define SPATIAL_SERVICE_QUERY_SERVICE_H_

#include <chrono>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/result.h"
#include "core/scratch.h"
#include "db/serving_db.h"
#include "db/spatial_db.h"
#include "obs/histogram.h"
#include "obs/metrics.h"
#include "obs/query_metrics.h"
#include "obs/slow_query_log.h"
#include "obs/trace.h"
#include "service/request.h"
#include "service/request_queue.h"
#include "service/service_stats.h"
#include "storage/buffer_pool.h"
#include "storage/read_only_disk.h"
#include "storage/resident_tree.h"

namespace spatial {

// Concurrent query service over a SpatialDb: a fixed pool of worker
// threads drains an MPMC request queue and answers kNN, constrained kNN,
// range, and incremental top-k queries.
//
// Two modes:
//   * Read-only (Open / Attach): the classic immutable-tree service.
//   * Serving (OpenServing): the database is a ServingDb — a dedicated
//     writer thread drains a separate write queue, group-commits batches
//     to the WAL, and publishes copy-on-write snapshots; each reader
//     worker pins the current snapshot around every query, so queries see
//     a consistent tree version while writes land concurrently
//     (docs/DURABILITY.md).
//
// Concurrency model (docs/SERVICE.md has the full story):
//   * The served tree version is immutable (permanently in read-only mode,
//     per-snapshot under COW in serving mode), so workers share the
//     on-disk image with no coordination at all.
//   * Each worker owns a private ReadOnlyDiskView + BufferPool + RTree
//     handle — the hot path (queue pop aside) takes no locks and touches
//     no shared mutable state. Physical reads go through the base disk's
//     thread-safe ReadPageConcurrent (pread on files, stable-memory copy
//     in-memory).
//   * Per-query latency lands in a lock-free per-worker histogram;
//     Stats() merges workers into one ServiceStats (percentiles, QPS, and
//     the paper's page-accesses-per-query, now measurable under load).
//
// Usage:
//   auto svc = QueryService<2>::Open("points.sdb", 1024, {});
//   auto future = (*svc)->Submit(QueryRequest<2>::Knn({{0.5, 0.5}}, 8));
//   QueryResponse<2> resp = future.get();
//
// Submit may be called from any number of threads. Stats() may be called
// at any time; counters are exact once every submitted future has
// resolved. The destructor drains outstanding requests and joins the
// workers.
template <int D>
class QueryService {
 public:
  struct Options {
    uint32_t num_workers = 4;
    // Private buffer-pool frames per worker. Queries pin one frame at a
    // time, so even tiny pools work; larger pools cache the hot upper
    // tree levels per worker (E14 varies this).
    uint32_t frames_per_worker = 256;
    size_t queue_capacity = 1024;
    EvictionPolicy eviction = EvictionPolicy::kLru;
    // Benchmarking aid: make every physical read sleep this long, modelling
    // a rotational disk so throughput scaling reflects I/O overlap rather
    // than the host's core count (see E14 and storage/read_only_disk.h).
    uint32_t simulated_read_latency_us = 0;

    // Memory-resident fast path (docs/PERF.md "Resident tier"): compile
    // the served tree into a pinned SoA arena at startup and route
    // kKnn/kTopK/kBatchKnn through it — no buffer-pool pins, no page
    // translation, no per-visit transpose, answers and visit order
    // bit-identical to the paged path. Serving mode drops the compiled
    // tree whenever a write publishes a new version and falls back to the
    // paged path until RecompileResidentTier() is called; a tree whose
    // arena would exceed resident_max_bytes also stays paged. Compile
    // failures are silent: residency is a performance tier, never a
    // correctness requirement.
    bool resident_tier = true;
    uint64_t resident_max_bytes = 1ull << 32;  // 4 GiB

    // Observability (docs/OBSERVABILITY.md). Sampling is per query, drawn
    // from a per-worker xorshift: 0 = tracing off (the default; queries
    // pay one pointer test), 10000 = 1%. Queries at or above the slow
    // threshold are captured in the slow-query log whether sampled or not
    // (without per-level counts unless they were also sampled).
    uint32_t trace_sample_per_million = 0;
    uint64_t slow_query_threshold_ns = 10'000'000;  // 10 ms
    size_t slow_log_capacity = 64;     // retained slow entries
    size_t sampled_log_capacity = 64;  // reservoir of sampled traces

    Status Validate() const {
      if (num_workers < 1) {
        return Status::InvalidArgument("num_workers must be >= 1");
      }
      if (frames_per_worker < 1) {
        return Status::InvalidArgument("frames_per_worker must be >= 1");
      }
      return Status::OK();
    }
  };

  // Opens `path` read-only and serves it; the service owns the database.
  static Result<std::unique_ptr<QueryService>> Open(const std::string& path,
                                                    uint32_t page_size,
                                                    const Options& options);

  // Serves a database owned by the caller. `db` must outlive the service,
  // must not be mutated while served, and — because workers read the raw
  // disk, not the caller's buffer pool — must hold no unflushed dirty
  // pages (call db.Flush() first; bulk load flushes on completion).
  static Result<std::unique_ptr<QueryService>> Attach(const SpatialDb<D>& db,
                                                      const Options& options);

  // Opens (or creates) `path` as a ServingDb and serves it read-write:
  // kInsert/kDelete/kCheckpoint requests are accepted alongside queries.
  // Replays the WAL tail (crash recovery) before the first request runs.
  static Result<std::unique_ptr<QueryService>> OpenServing(
      const std::string& path, const ServingOptions& serving_options,
      const Options& options);

  QueryService(const QueryService&) = delete;
  QueryService& operator=(const QueryService&) = delete;
  ~QueryService();

  // Enqueues a query (blocking while the queue is full) and returns the
  // future answer. After Shutdown(), resolves immediately with an error.
  std::future<QueryResponse<D>> Submit(QueryRequest<D> request);

  // Convenience synchronous round trip.
  QueryResponse<D> Execute(QueryRequest<D> request);

  // Stops accepting requests, drains the queue, joins workers. Idempotent;
  // also run by the destructor.
  void Shutdown();

  // Live aggregated snapshot across workers — safe to call from any
  // thread at any time, including while workers run (every source cell is
  // a relaxed-atomic single-writer counter). Exact once all submitted
  // futures have resolved; during load, counters may be torn *across*
  // fields (never within one).
  ServiceStats Snapshot() const;

  // Historical spelling of Snapshot().
  ServiceStats Stats() const { return Snapshot(); }

  // Per-kind traversal counters summed over workers (live, like
  // Snapshot()).
  QueryStats KindQueryStats(QueryKind kind) const;
  uint64_t KindQueryCount(QueryKind kind) const;

  // The service's metrics registry: every layer's instruments — request /
  // queue / latency, per-kind traversal stats, buffer pool, physical I/O,
  // WAL group commit, snapshot epochs — exposed in Prometheus text format
  // by ScrapeMetrics(). Scraping is thread-safe and non-blocking for
  // workers.
  obs::MetricsRegistry& metrics() { return *metrics_; }
  const obs::MetricsRegistry& metrics() const { return *metrics_; }
  std::string ScrapeMetrics() const { return metrics_->ScrapeText(); }

  // Captured slow/sampled queries (ring + reservoir; DumpJson for the
  // CLI).
  const obs::SlowQueryLog& slow_query_log() const { return *slow_log_; }

  // Recompiles the resident tier from the currently published tree
  // version (serving mode pins a snapshot around the walk). Returns the
  // compile status; on failure the service simply keeps answering through
  // the paged path. InvalidArgument when the tier is disabled.
  Status RecompileResidentTier();

  // The currently published resident tree, or null when the tier is
  // disabled, over the arena cap, or invalidated by a write. Serving-mode
  // callers should treat it as advisory: workers additionally check it
  // against their pinned snapshot before trusting it.
  std::shared_ptr<const ResidentTree<D>> resident_tree() const;

  // Zeroes all per-worker counters and restarts the QPS clock. Call only
  // while no queries are in flight (between bench phases).
  void ResetStats();

  const Options& options() const { return options_; }
  uint32_t num_workers() const { return options_.num_workers; }
  const SpatialDb<D>& db() const { return *db_; }

  // Serving mode only (null otherwise). Recovery info, checkpoint control,
  // and the snapshot registry live here.
  ServingDb<D>* serving_db() { return serving_db_.get(); }
  const ServingDb<D>* serving_db() const { return serving_db_.get(); }
  bool serving() const { return serving_db_ != nullptr; }

 private:
  struct Task {
    QueryRequest<D> request;
    std::promise<QueryResponse<D>> promise;
    // Stamped by Submit; the worker's dequeue time minus this is the
    // queue-wait span.
    std::chrono::steady_clock::time_point submit_time;
  };

  // Everything a worker thread touches while executing queries. Built on
  // the service thread before workers start; thereafter `stats_ok/failed`
  // and the histogram are written only by the owning worker.
  struct Worker {
    std::unique_ptr<ReadOnlyDiskView> disk;
    std::unique_ptr<BufferPool> pool;
    std::optional<RTree<D>> tree;
    LatencyHistogram histogram;
    LatencyHistogram queue_wait;
    // Physical-read latency, recorded by the disk view (miss path only).
    obs::PowerHistogram read_latency;
    std::atomic<uint64_t> ok{0};
    std::atomic<uint64_t> failed{0};
    // Traversal counters, sharded per kind; written once per query by the
    // owning worker, read live by Snapshot() and the metrics scrape.
    obs::AtomicQueryStats kind_stats[kNumQueryKinds];
    obs::StatCounter kind_count[kNumQueryKinds];
    // Sampled tracing: the worker's reusable trace context (armed through
    // scratch.trace only for sampled queries) and its sampling RNG.
    obs::TraceContext trace_ctx;
    uint64_t rng = 0;
    // Reusable traversal arena: after warm-up, kNN/top-k dispatches run
    // without heap allocation (docs/PERF.md).
    QueryScratch<D> scratch;
    // Serving mode: the worker's snapshot-pin slot, and the last
    // reclaim_gen it observed — when it changes, a checkpoint recycled
    // page ids and the private pool's cached images must be dropped.
    uint32_t reader_slot = 0;
    uint64_t last_reclaim_gen = 0;
    // Read-only mode only: the resident tree, set before the worker
    // thread starts and immutable afterwards, so the hot path reads it
    // with no synchronization at all. Serving workers instead take a
    // shared_ptr copy per query (the tree can be invalidated under them).
    const ResidentTree<D>* resident_fixed = nullptr;
    // Tier routing counters for resident-eligible kinds (kKnn, kTopK,
    // kBatchKnn): served from the arena vs fell back to the paged path.
    obs::StatCounter tier_hits[kNumQueryKinds];
    obs::StatCounter tier_fallbacks[kNumQueryKinds];
  };

  QueryService(const SpatialDb<D>* db, std::unique_ptr<SpatialDb<D>> owned,
               const Options& options);

  Status StartWorkers();
  void RegisterMetrics();
  void CollectMetrics(obs::ExpositionWriter& writer) const;
  void WorkerLoop(Worker* worker, uint32_t worker_id);
  void WriterLoop();
  void RunWriteBatch(std::vector<Task>* batch);
  // `resident` is the tree to route eligible kinds through, already
  // validated against the worker's pinned snapshot (null = paged path).
  QueryResponse<D> Dispatch(Worker* worker, const QueryRequest<D>& request,
                            const ResidentTree<D>* resident);
  // Compiles the tree version identified by (root_page, tree_size,
  // source_epoch) through a throwaway pool and publishes it under
  // resident_mu_.
  Status CompileResident(PageId root_page, uint64_t tree_size,
                         uint64_t source_epoch);
  // Writer-thread hook: drops the published resident tree once it no
  // longer matches the current snapshot.
  void DropStaleResident();

  Options options_;
  std::unique_ptr<SpatialDb<D>> owned_db_;  // Open() path; null for Attach()
  // OpenServing() path; declared before workers_ so their disk views and
  // pools die first.
  std::unique_ptr<ServingDb<D>> serving_db_;
  const SpatialDb<D>* db_;                  // always valid
  RequestQueue<Task> queue_;
  // Serving mode: writes bypass the query queue so a burst of queries
  // cannot starve the durability path (and vice versa).
  std::unique_ptr<RequestQueue<Task>> write_queue_;
  std::thread writer_thread_;
  std::atomic<uint64_t> writes_ok_{0};
  std::atomic<uint64_t> writes_failed_{0};
  std::atomic<uint64_t> checkpoints_{0};
  std::vector<std::unique_ptr<Worker>> workers_;
  std::vector<std::thread> threads_;
  bool reader_slots_held_ = false;
  std::chrono::steady_clock::time_point epoch_;
  std::atomic<bool> stopped_{false};
  // Observability. Built before the workers start; collectors capture
  // `this` and read the per-worker shards at scrape time.
  std::unique_ptr<obs::MetricsRegistry> metrics_;
  std::unique_ptr<obs::SlowQueryLog> slow_log_;
  // Resident tier. The published tree is swapped under resident_mu_:
  // compiled by StartWorkers / RecompileResidentTier, dropped by the
  // writer thread when a batch publishes a new version. Serving workers
  // copy the shared_ptr per query and verify (source_epoch, root_page)
  // against their pinned snapshot; read-only workers bypass the mutex via
  // Worker::resident_fixed.
  mutable std::mutex resident_mu_;
  std::shared_ptr<const ResidentTree<D>> resident_;
  std::atomic<uint64_t> resident_compiles_{0};
  std::atomic<uint64_t> resident_invalidations_{0};
  obs::PowerHistogram resident_compile_ns_;
};

extern template class QueryService<2>;
extern template class QueryService<3>;

}  // namespace spatial

#endif  // SPATIAL_SERVICE_QUERY_SERVICE_H_
