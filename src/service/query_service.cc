#include "service/query_service.h"

#include <utility>

#include "core/constrained.h"
#include "core/incremental.h"
#include "core/knn.h"

namespace spatial {

const char* QueryKindName(QueryKind kind) {
  switch (kind) {
    case QueryKind::kKnn:
      return "knn";
    case QueryKind::kConstrainedKnn:
      return "constrained-knn";
    case QueryKind::kRange:
      return "range";
    case QueryKind::kTopK:
      return "top-k";
    case QueryKind::kBatchKnn:
      return "batch-knn";
    case QueryKind::kInsert:
      return "insert";
    case QueryKind::kDelete:
      return "delete";
    case QueryKind::kCheckpoint:
      return "checkpoint";
  }
  return "unknown";
}

namespace {

// Cap on how many queued write requests one group commit absorbs; bounds
// batch latency without limiting throughput (the next batch starts
// immediately).
constexpr size_t kMaxWriteBatch = 256;

}  // namespace

template <int D>
QueryService<D>::QueryService(const SpatialDb<D>* db,
                              std::unique_ptr<SpatialDb<D>> owned,
                              const Options& options)
    : options_(options),
      owned_db_(std::move(owned)),
      db_(db),
      queue_(options.queue_capacity),
      epoch_(std::chrono::steady_clock::now()) {}

template <int D>
Result<std::unique_ptr<QueryService<D>>> QueryService<D>::Open(
    const std::string& path, uint32_t page_size, const Options& options) {
  SPATIAL_RETURN_IF_ERROR(options.Validate());
  // The service's own pool is used only to decode the superblock and
  // validate the root; queries run through the per-worker pools.
  SPATIAL_ASSIGN_OR_RETURN(
      SpatialDb<D> db,
      SpatialDb<D>::OpenFromFileReadOnly(path, page_size,
                                         /*buffer_pages=*/16));
  auto owned = std::make_unique<SpatialDb<D>>(std::move(db));
  const SpatialDb<D>* raw = owned.get();
  std::unique_ptr<QueryService<D>> service(
      new QueryService<D>(raw, std::move(owned), options));
  SPATIAL_RETURN_IF_ERROR(service->StartWorkers());
  return service;
}

template <int D>
Result<std::unique_ptr<QueryService<D>>> QueryService<D>::Attach(
    const SpatialDb<D>& db, const Options& options) {
  SPATIAL_RETURN_IF_ERROR(options.Validate());
  std::unique_ptr<QueryService<D>> service(
      new QueryService<D>(&db, nullptr, options));
  SPATIAL_RETURN_IF_ERROR(service->StartWorkers());
  return service;
}

template <int D>
Result<std::unique_ptr<QueryService<D>>> QueryService<D>::OpenServing(
    const std::string& path, const ServingOptions& serving_options,
    const Options& options) {
  SPATIAL_RETURN_IF_ERROR(options.Validate());
  if (serving_options.max_reader_slots < options.num_workers) {
    return Status::InvalidArgument(
        "serving: max_reader_slots must cover every worker");
  }
  SPATIAL_ASSIGN_OR_RETURN(std::unique_ptr<ServingDb<D>> serving,
                           ServingDb<D>::Open(path, serving_options));
  const SpatialDb<D>* raw = &serving->db();
  std::unique_ptr<QueryService<D>> service(
      new QueryService<D>(raw, nullptr, options));
  service->serving_db_ = std::move(serving);
  SPATIAL_RETURN_IF_ERROR(service->StartWorkers());
  return service;
}

template <int D>
Status QueryService<D>::StartWorkers() {
  // Build every worker's private view/pool/tree before the first thread
  // starts, so worker construction needs no synchronization.
  PageId root_page = db_->tree().root_page();
  uint64_t tree_size = db_->tree().size();
  uint64_t reclaim_gen = 0;
  if (serving_db_ != nullptr) {
    const TreeSnapshot snap = serving_db_->CurrentSnapshot();
    root_page = snap.root_page;
    tree_size = snap.size;
    reclaim_gen = snap.reclaim_gen;
  }
  for (uint32_t i = 0; i < options_.num_workers; ++i) {
    auto worker = std::make_unique<Worker>();
    worker->disk = std::make_unique<ReadOnlyDiskView>(
        &db_->disk(), options_.simulated_read_latency_us);
    worker->pool = std::make_unique<BufferPool>(
        worker->disk.get(), options_.frames_per_worker, options_.eviction);
    SPATIAL_ASSIGN_OR_RETURN(
        RTree<D> tree, RTree<D>::Open(worker->pool.get(),
                                      db_->tree().options(), root_page,
                                      tree_size));
    worker->tree.emplace(std::move(tree));
    if (serving_db_ != nullptr) {
      SPATIAL_ASSIGN_OR_RETURN(worker->reader_slot,
                               serving_db_->RegisterReader());
      worker->last_reclaim_gen = reclaim_gen;
      reader_slots_held_ = true;
    }
    workers_.push_back(std::move(worker));
  }
  epoch_ = std::chrono::steady_clock::now();
  threads_.reserve(options_.num_workers);
  for (uint32_t i = 0; i < options_.num_workers; ++i) {
    threads_.emplace_back(&QueryService<D>::WorkerLoop, this,
                          workers_[i].get(), i);
  }
  if (serving_db_ != nullptr) {
    write_queue_ =
        std::make_unique<RequestQueue<Task>>(options_.queue_capacity);
    writer_thread_ = std::thread(&QueryService<D>::WriterLoop, this);
  }
  return Status::OK();
}

template <int D>
QueryService<D>::~QueryService() {
  Shutdown();
}

template <int D>
void QueryService<D>::Shutdown() {
  stopped_.store(true, std::memory_order_release);
  queue_.Close();
  if (write_queue_ != nullptr) write_queue_->Close();
  for (std::thread& t : threads_) {
    if (t.joinable()) t.join();
  }
  threads_.clear();
  if (writer_thread_.joinable()) writer_thread_.join();
  if (serving_db_ != nullptr && reader_slots_held_) {
    for (const auto& worker : workers_) {
      serving_db_->ReleaseReader(worker->reader_slot);
    }
    reader_slots_held_ = false;
  }
}

template <int D>
std::future<QueryResponse<D>> QueryService<D>::Submit(
    QueryRequest<D> request) {
  Task task;
  task.request = std::move(request);
  std::future<QueryResponse<D>> future = task.promise.get_future();
  const bool is_write = IsWriteKind(task.request.kind);
  if (is_write && serving_db_ == nullptr) {
    QueryResponse<D> response;
    response.status = Status::InvalidArgument(
        "write requests need a serving-mode service (OpenServing)");
    task.promise.set_value(std::move(response));
    return future;
  }
  RequestQueue<Task>& queue = is_write ? *write_queue_ : queue_;
  if (!queue.Push(std::move(task))) {
    // Queue closed; Push left `task` intact, so answer inline.
    QueryResponse<D> response;
    response.status = Status::InvalidArgument("query service is shut down");
    task.promise.set_value(std::move(response));
  }
  return future;
}

template <int D>
QueryResponse<D> QueryService<D>::Execute(QueryRequest<D> request) {
  return Submit(std::move(request)).get();
}

template <int D>
void QueryService<D>::WorkerLoop(Worker* worker, uint32_t worker_id) {
  while (std::optional<Task> task = queue_.Pop()) {
    const auto start = std::chrono::steady_clock::now();
    QueryResponse<D> response;
    if (serving_db_ != nullptr) {
      // Pin the current snapshot for the whole query: the checkpoint
      // reclaimer will not recycle any page this version can reach until
      // the Unpin. A reclaim_gen change means some earlier checkpoint DID
      // recycle ids — cached images of them are stale, drop them.
      const TreeSnapshot snap = serving_db_->PinSnapshot(worker->reader_slot);
      Status prep = Status::OK();
      if (snap.reclaim_gen != worker->last_reclaim_gen) {
        prep = worker->pool->InvalidateAll();
        if (prep.ok()) worker->last_reclaim_gen = snap.reclaim_gen;
      }
      if (prep.ok()) {
        worker->tree->Rebase(snap.root_page, snap.size, snap.root_level);
        response = Dispatch(worker, task->request);
      } else {
        response.status = std::move(prep);
      }
      serving_db_->UnpinSnapshot(worker->reader_slot);
    } else {
      response = Dispatch(worker, task->request);
    }
    const auto end = std::chrono::steady_clock::now();
    const uint64_t ns = static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(end - start)
            .count());
    response.latency_ns = ns;
    response.worker_id = worker_id;
    worker->histogram.Record(ns);
    (response.ok() ? worker->ok : worker->failed)
        .fetch_add(1, std::memory_order_relaxed);
    worker->query_stats.Add(response.stats);
    task->promise.set_value(std::move(response));
  }
}

template <int D>
void QueryService<D>::WriterLoop() {
  while (std::optional<Task> task = write_queue_->Pop()) {
    std::vector<Task> batch;
    batch.push_back(std::move(*task));
    // Group commit: everything already queued rides this batch — one WAL
    // write plus one fsync amortized over all of it.
    while (batch.size() < kMaxWriteBatch) {
      std::optional<Task> more = write_queue_->TryPop();
      if (!more.has_value()) break;
      batch.push_back(std::move(*more));
    }
    RunWriteBatch(&batch);
  }
}

template <int D>
void QueryService<D>::RunWriteBatch(std::vector<Task>* batch) {
  // The writer "worker id" is one past the readers'.
  const uint32_t writer_id = options_.num_workers;
  size_t i = 0;
  while (i < batch->size()) {
    const auto start = std::chrono::steady_clock::now();
    const auto finish = [&](Task* t, QueryResponse<D> response) {
      response.latency_ns = static_cast<uint64_t>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(
              std::chrono::steady_clock::now() - start)
              .count());
      response.worker_id = writer_id;
      t->promise.set_value(std::move(response));
    };
    if ((*batch)[i].request.kind == QueryKind::kCheckpoint) {
      QueryResponse<D> response;
      response.status = serving_db_->Checkpoint();
      (response.ok() ? checkpoints_ : writes_failed_)
          .fetch_add(1, std::memory_order_relaxed);
      finish(&(*batch)[i], std::move(response));
      ++i;
      continue;
    }
    // A contiguous run of inserts/deletes becomes one ApplyBatch (one
    // commit); a checkpoint request acts as a barrier between runs.
    size_t j = i;
    std::vector<typename ServingDb<D>::WriteOp> ops;
    while (j < batch->size() &&
           (*batch)[j].request.kind != QueryKind::kCheckpoint) {
      const QueryRequest<D>& rq = (*batch)[j].request;
      ops.push_back(rq.kind == QueryKind::kInsert
                        ? ServingDb<D>::WriteOp::Insert(rq.window,
                                                        rq.object_id)
                        : ServingDb<D>::WriteOp::Delete(rq.window,
                                                        rq.object_id));
      ++j;
    }
    std::vector<typename ServingDb<D>::WriteResult> results;
    const Status applied = serving_db_->ApplyBatch(ops, &results);
    for (size_t k = i; k < j; ++k) {
      QueryResponse<D> response;
      response.status = applied;
      if (applied.ok()) {
        response.lsn = results[k - i].lsn;
        response.affected = results[k - i].applied ? 1 : 0;
      }
      (applied.ok() ? writes_ok_ : writes_failed_)
          .fetch_add(1, std::memory_order_relaxed);
      finish(&(*batch)[k], std::move(response));
    }
    i = j;
  }
}

template <int D>
QueryResponse<D> QueryService<D>::Dispatch(Worker* worker,
                                           const QueryRequest<D>& request) {
  QueryResponse<D> response;
  const RTree<D>& tree = *worker->tree;
  switch (request.kind) {
    case QueryKind::kKnn: {
      response.status =
          KnnSearchInto<D>(tree, request.query, request.knn, &worker->scratch,
                           &response.neighbors, &response.stats);
      return response;
    }
    case QueryKind::kConstrainedKnn: {
      auto result = ConstrainedKnnSearch<D>(tree, request.query,
                                            request.window, request.knn,
                                            &response.stats);
      if (result.ok()) {
        response.neighbors = std::move(result).value();
      } else {
        response.status = result.status();
      }
      return response;
    }
    case QueryKind::kRange: {
      response.status = tree.Search(request.window, &response.entries);
      return response;
    }
    case QueryKind::kTopK: {
      if (request.top_k < 1) {
        response.status = Status::InvalidArgument("top_k must be >= 1");
        return response;
      }
      IncrementalKnn<D> scan(tree, request.query, &worker->scratch,
                             &response.stats);
      for (uint32_t i = 0; i < request.top_k; ++i) {
        auto next = scan.Next();
        if (!next.ok()) {
          response.status = next.status();
          return response;
        }
        if (!next->has_value()) break;  // tree exhausted
        response.neighbors.push_back(**next);
      }
      return response;
    }
    case QueryKind::kBatchKnn: {
      if (request.batch_queries.empty()) {
        response.batch_offsets.push_back(0);
        return response;
      }
      BatchKnnResult batch;
      response.status = KnnSearchBatch<D>(
          tree, request.batch_queries.data(), request.batch_queries.size(),
          request.knn, &worker->scratch, &batch);
      if (response.status.ok()) {
        response.neighbors = std::move(batch.neighbors);
        response.batch_offsets = std::move(batch.offsets);
        for (const QueryStats& qs : batch.stats) response.stats.Add(qs);
      }
      return response;
    }
    case QueryKind::kInsert:
    case QueryKind::kDelete:
    case QueryKind::kCheckpoint:
      // Submit routes write kinds to the writer thread; reaching a reader
      // worker with one is a bug.
      response.status =
          Status::Internal("write request dispatched to a query worker");
      return response;
  }
  response.status = Status::InvalidArgument("unknown query kind");
  return response;
}

template <int D>
ServiceStats QueryService<D>::Stats() const {
  ServiceStats stats;
  stats.workers = static_cast<uint32_t>(workers_.size());
  stats.writes_ok = writes_ok_.load(std::memory_order_relaxed);
  stats.writes_failed = writes_failed_.load(std::memory_order_relaxed);
  stats.checkpoints = checkpoints_.load(std::memory_order_relaxed);
  stats.elapsed_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    epoch_)
          .count();
  for (const auto& worker : workers_) {
    stats.queries_ok += worker->ok.load(std::memory_order_relaxed);
    stats.queries_failed += worker->failed.load(std::memory_order_relaxed);
    stats.io += worker->disk->stats();
    stats.buffer += worker->pool->stats();
    stats.query.Add(worker->query_stats);
    stats.latency += worker->histogram.Snapshot();
  }
  return stats;
}

template <int D>
void QueryService<D>::ResetStats() {
  for (const auto& worker : workers_) {
    worker->disk->ResetStats();
    worker->pool->ResetStats();
    worker->query_stats.Reset();
    worker->histogram.Reset();
    worker->ok.store(0, std::memory_order_relaxed);
    worker->failed.store(0, std::memory_order_relaxed);
  }
  writes_ok_.store(0, std::memory_order_relaxed);
  writes_failed_.store(0, std::memory_order_relaxed);
  checkpoints_.store(0, std::memory_order_relaxed);
  epoch_ = std::chrono::steady_clock::now();
}

template class QueryService<2>;
template class QueryService<3>;

}  // namespace spatial
