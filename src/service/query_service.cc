#include "service/query_service.h"

#include <limits>
#include <utility>

#include "core/constrained.h"
#include "core/incremental.h"
#include "core/knn.h"
#include "core/reverse_knn.h"
#include "core/skyline.h"

namespace spatial {

namespace {

// Cap on how many queued write requests one group commit absorbs; bounds
// batch latency without limiting throughput (the next batch starts
// immediately).
constexpr size_t kMaxWriteBatch = 256;

}  // namespace

template <int D>
QueryService<D>::QueryService(const SpatialDb<D>* db,
                              std::unique_ptr<SpatialDb<D>> owned,
                              const Options& options)
    : options_(options),
      owned_db_(std::move(owned)),
      db_(db),
      queue_(options.queue_capacity),
      epoch_(std::chrono::steady_clock::now()) {}

template <int D>
Result<std::unique_ptr<QueryService<D>>> QueryService<D>::Open(
    const std::string& path, uint32_t page_size, const Options& options) {
  SPATIAL_RETURN_IF_ERROR(options.Validate());
  // The service's own pool is used only to decode the superblock and
  // validate the root; queries run through the per-worker pools.
  SPATIAL_ASSIGN_OR_RETURN(
      SpatialDb<D> db,
      SpatialDb<D>::OpenFromFileReadOnly(path, page_size,
                                         /*buffer_pages=*/16));
  auto owned = std::make_unique<SpatialDb<D>>(std::move(db));
  const SpatialDb<D>* raw = owned.get();
  std::unique_ptr<QueryService<D>> service(
      new QueryService<D>(raw, std::move(owned), options));
  SPATIAL_RETURN_IF_ERROR(service->StartWorkers());
  return service;
}

template <int D>
Result<std::unique_ptr<QueryService<D>>> QueryService<D>::Attach(
    const SpatialDb<D>& db, const Options& options) {
  SPATIAL_RETURN_IF_ERROR(options.Validate());
  std::unique_ptr<QueryService<D>> service(
      new QueryService<D>(&db, nullptr, options));
  SPATIAL_RETURN_IF_ERROR(service->StartWorkers());
  return service;
}

template <int D>
Result<std::unique_ptr<QueryService<D>>> QueryService<D>::OpenServing(
    const std::string& path, const ServingOptions& serving_options,
    const Options& options) {
  SPATIAL_RETURN_IF_ERROR(options.Validate());
  if (serving_options.max_reader_slots < options.num_workers) {
    return Status::InvalidArgument(
        "serving: max_reader_slots must cover every worker");
  }
  SPATIAL_ASSIGN_OR_RETURN(std::unique_ptr<ServingDb<D>> serving,
                           ServingDb<D>::Open(path, serving_options));
  const SpatialDb<D>* raw = &serving->db();
  std::unique_ptr<QueryService<D>> service(
      new QueryService<D>(raw, nullptr, options));
  service->serving_db_ = std::move(serving);
  SPATIAL_RETURN_IF_ERROR(service->StartWorkers());
  return service;
}

template <int D>
Status QueryService<D>::StartWorkers() {
  // Build every worker's private view/pool/tree before the first thread
  // starts, so worker construction needs no synchronization.
  PageId root_page = db_->tree().root_page();
  uint64_t tree_size = db_->tree().size();
  uint64_t reclaim_gen = 0;
  if (serving_db_ != nullptr) {
    const TreeSnapshot snap = serving_db_->CurrentSnapshot();
    root_page = snap.root_page;
    tree_size = snap.size;
    reclaim_gen = snap.reclaim_gen;
  }
  for (uint32_t i = 0; i < options_.num_workers; ++i) {
    auto worker = std::make_unique<Worker>();
    // Distinct nonzero xorshift seeds per worker (value is arbitrary).
    worker->rng = 0x9E3779B97F4A7C15ULL * (i + 1) + 1;
    worker->disk = std::make_unique<ReadOnlyDiskView>(
        &db_->disk(), options_.simulated_read_latency_us,
        &worker->read_latency);
    worker->pool = std::make_unique<BufferPool>(
        worker->disk.get(), options_.frames_per_worker, options_.eviction);
    SPATIAL_ASSIGN_OR_RETURN(
        RTree<D> tree, RTree<D>::Open(worker->pool.get(),
                                      db_->tree().options(), root_page,
                                      tree_size));
    worker->tree.emplace(std::move(tree));
    if (serving_db_ != nullptr) {
      SPATIAL_ASSIGN_OR_RETURN(worker->reader_slot,
                               serving_db_->RegisterReader());
      worker->last_reclaim_gen = reclaim_gen;
      reader_slots_held_ = true;
    }
    workers_.push_back(std::move(worker));
  }
  if (options_.resident_tier) {
    // Best effort: no thread is running yet, so the walk needs no pin and
    // the publish needs no ordering. A failed compile (in practice: the
    // arena cap; a corrupt page would have failed Open already) silently
    // leaves every query on the paged path.
    uint64_t source_epoch = 0;
    if (serving_db_ != nullptr) {
      source_epoch = serving_db_->CurrentSnapshot().epoch;
    }
    if (CompileResident(root_page, tree_size, source_epoch).ok() &&
        serving_db_ == nullptr) {
      // Read-only trees are immutable for the service's lifetime, so the
      // workers can hold the raw pointer and skip resident_mu_ per query.
      for (const auto& worker : workers_) {
        worker->resident_fixed = resident_.get();
      }
    }
  }
  RegisterMetrics();
  epoch_ = std::chrono::steady_clock::now();
  threads_.reserve(options_.num_workers);
  for (uint32_t i = 0; i < options_.num_workers; ++i) {
    threads_.emplace_back(&QueryService<D>::WorkerLoop, this,
                          workers_[i].get(), i);
  }
  if (serving_db_ != nullptr) {
    write_queue_ =
        std::make_unique<RequestQueue<Task>>(options_.queue_capacity);
    writer_thread_ = std::thread(&QueryService<D>::WriterLoop, this);
  }
  return Status::OK();
}

template <int D>
QueryService<D>::~QueryService() {
  Shutdown();
}

template <int D>
void QueryService<D>::Shutdown() {
  stopped_.store(true, std::memory_order_release);
  queue_.Close();
  if (write_queue_ != nullptr) write_queue_->Close();
  for (std::thread& t : threads_) {
    if (t.joinable()) t.join();
  }
  threads_.clear();
  if (writer_thread_.joinable()) writer_thread_.join();
  if (serving_db_ != nullptr && reader_slots_held_) {
    for (const auto& worker : workers_) {
      serving_db_->ReleaseReader(worker->reader_slot);
    }
    reader_slots_held_ = false;
  }
}

template <int D>
std::future<QueryResponse<D>> QueryService<D>::Submit(
    QueryRequest<D> request) {
  Task task;
  task.request = std::move(request);
  task.submit_time = std::chrono::steady_clock::now();
  std::future<QueryResponse<D>> future = task.promise.get_future();
  const bool is_write = IsWriteKind(task.request.kind);
  if (is_write && serving_db_ == nullptr) {
    QueryResponse<D> response;
    response.status = Status::InvalidArgument(
        "write requests need a serving-mode service (OpenServing)");
    task.promise.set_value(std::move(response));
    return future;
  }
  RequestQueue<Task>& queue = is_write ? *write_queue_ : queue_;
  if (!queue.Push(std::move(task))) {
    // Queue closed; Push left `task` intact, so answer inline.
    QueryResponse<D> response;
    response.status = Status::InvalidArgument("query service is shut down");
    task.promise.set_value(std::move(response));
  }
  return future;
}

template <int D>
QueryResponse<D> QueryService<D>::Execute(QueryRequest<D> request) {
  return Submit(std::move(request)).get();
}

template <int D>
void QueryService<D>::WorkerLoop(Worker* worker, uint32_t worker_id) {
  while (std::optional<Task> task = queue_.Pop()) {
    const auto start = std::chrono::steady_clock::now();
    const uint64_t queue_wait_ns = static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            start - task->submit_time)
            .count());
    worker->queue_wait.Record(queue_wait_ns);
    // Per-query sampling draw; an armed scratch.trace pointer is the only
    // thing the traversals see (one pointer test per node visit; nothing
    // allocates on either path). A propagated trace context (wire v3:
    // trace_id + trace_sampled) forces the draw, so a router-sampled
    // request is traced by every shard it scatters to.
    const bool forced =
        task->request.trace_sampled && task->request.trace_id != 0;
    const bool sampled =
        forced ||
        obs::SampleDraw(&worker->rng, options_.trace_sample_per_million);
    if (sampled) {
      worker->trace_ctx.Reset();
      worker->trace_ctx.SetSpan(obs::SpanKind::kQueueWait, queue_wait_ns);
      worker->scratch.trace = &worker->trace_ctx;
    }
    QueryResponse<D> response;
    if (serving_db_ != nullptr) {
      // Pin the current snapshot for the whole query: the checkpoint
      // reclaimer will not recycle any page this version can reach until
      // the Unpin. A reclaim_gen change means some earlier checkpoint DID
      // recycle ids — cached images of them are stale, drop them.
      const TreeSnapshot snap = serving_db_->PinSnapshot(worker->reader_slot);
      Status prep = Status::OK();
      if (snap.reclaim_gen != worker->last_reclaim_gen) {
        prep = worker->pool->InvalidateAll();
        if (prep.ok()) worker->last_reclaim_gen = snap.reclaim_gen;
      }
      if (prep.ok()) {
        worker->tree->Rebase(snap.root_page, snap.size, snap.root_level);
        // The resident tree is trusted only when it was compiled from
        // exactly the snapshot this query pinned: a write bumps the epoch
        // (and usually the COW root), so a stale arena can never serve a
        // query — it just falls back to the paged path.
        std::shared_ptr<const ResidentTree<D>> resident;
        if (options_.resident_tier) {
          std::lock_guard<std::mutex> lock(resident_mu_);
          resident = resident_;
        }
        const ResidentTree<D>* fast =
            (resident != nullptr &&
             resident->source_epoch() == snap.epoch &&
             resident->root_page() == snap.root_page)
                ? resident.get()
                : nullptr;
        response = Dispatch(worker, task->request, fast);
      } else {
        response.status = std::move(prep);
      }
      serving_db_->UnpinSnapshot(worker->reader_slot);
    } else {
      response = Dispatch(worker, task->request, worker->resident_fixed);
    }
    const auto end = std::chrono::steady_clock::now();
    const uint64_t ns = static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(end - start)
            .count());
    response.latency_ns = ns;
    response.worker_id = worker_id;
    worker->histogram.Record(ns);
    (response.ok() ? worker->ok : worker->failed)
        .fetch_add(1, std::memory_order_relaxed);
    const int kind = static_cast<int>(task->request.kind);
    ++worker->kind_count[kind];
    worker->kind_stats[kind].Add(response.stats);
    if (sampled) {
      worker->trace_ctx.SetSpan(obs::SpanKind::kExecute, ns);
      worker->scratch.trace = nullptr;
    }
    if (sampled || ns >= slow_log_->slow_threshold_ns()) {
      // Stack POD copied into the log's preallocated ring: the capture
      // path allocates nothing.
      obs::QueryTraceRecord rec;
      rec.worker = static_cast<uint16_t>(worker_id);
      rec.k = task->request.kind == QueryKind::kTopK ? task->request.top_k
                                                     : task->request.knn.k;
      rec.SetKindName(QueryKindName(task->request.kind));
      rec.latency_ns = ns;
      rec.queue_wait_ns = queue_wait_ns;
      rec.traced = sampled;
      rec.stats = response.stats;
      if (sampled) {
        for (int l = 0; l < obs::kTraceMaxLevels; ++l) {
          rec.nodes_per_level[l] = worker->trace_ctx.nodes_per_level[l];
        }
        // The response carries the record back to the caller — over the
        // wire when the request rode a sampled trace context, so the
        // router can place this shard's span inside the assembled trace.
        response.trace = rec;
        response.has_trace = true;
      }
      slow_log_->Record(rec);
    }
    task->promise.set_value(std::move(response));
  }
}

template <int D>
void QueryService<D>::WriterLoop() {
  while (std::optional<Task> task = write_queue_->Pop()) {
    std::vector<Task> batch;
    batch.push_back(std::move(*task));
    // Group commit: everything already queued rides this batch — one WAL
    // write plus one fsync amortized over all of it.
    while (batch.size() < kMaxWriteBatch) {
      std::optional<Task> more = write_queue_->TryPop();
      if (!more.has_value()) break;
      batch.push_back(std::move(*more));
    }
    RunWriteBatch(&batch);
  }
}

template <int D>
void QueryService<D>::RunWriteBatch(std::vector<Task>* batch) {
  // The writer "worker id" is one past the readers'.
  const uint32_t writer_id = options_.num_workers;
  size_t i = 0;
  while (i < batch->size()) {
    const auto start = std::chrono::steady_clock::now();
    const auto finish = [&](Task* t, QueryResponse<D> response) {
      response.latency_ns = static_cast<uint64_t>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(
              std::chrono::steady_clock::now() - start)
              .count());
      response.worker_id = writer_id;
      t->promise.set_value(std::move(response));
    };
    if ((*batch)[i].request.kind == QueryKind::kCheckpoint) {
      QueryResponse<D> response;
      response.status = serving_db_->Checkpoint();
      (response.ok() ? checkpoints_ : writes_failed_)
          .fetch_add(1, std::memory_order_relaxed);
      if (response.ok()) DropStaleResident();
      finish(&(*batch)[i], std::move(response));
      ++i;
      continue;
    }
    // A contiguous run of inserts/deletes becomes one ApplyBatch (one
    // commit); a checkpoint request acts as a barrier between runs.
    size_t j = i;
    std::vector<typename ServingDb<D>::WriteOp> ops;
    while (j < batch->size() &&
           (*batch)[j].request.kind != QueryKind::kCheckpoint) {
      const QueryRequest<D>& rq = (*batch)[j].request;
      ops.push_back(rq.kind == QueryKind::kInsert
                        ? ServingDb<D>::WriteOp::Insert(rq.window,
                                                        rq.object_id)
                        : ServingDb<D>::WriteOp::Delete(rq.window,
                                                        rq.object_id));
      ++j;
    }
    std::vector<typename ServingDb<D>::WriteResult> results;
    const Status applied = serving_db_->ApplyBatch(ops, &results);
    if (applied.ok()) DropStaleResident();
    for (size_t k = i; k < j; ++k) {
      QueryResponse<D> response;
      response.status = applied;
      if (applied.ok()) {
        response.lsn = results[k - i].lsn;
        response.affected = results[k - i].applied ? 1 : 0;
      }
      (applied.ok() ? writes_ok_ : writes_failed_)
          .fetch_add(1, std::memory_order_relaxed);
      finish(&(*batch)[k], std::move(response));
    }
    i = j;
  }
}

template <int D>
QueryResponse<D> QueryService<D>::Dispatch(Worker* worker,
                                           const QueryRequest<D>& request,
                                           const ResidentTree<D>* resident) {
  QueryResponse<D> response;
  const RTree<D>& tree = *worker->tree;
  const int kind = static_cast<int>(request.kind);
  // Tier routing for resident-eligible kinds: one branch per query, and
  // the fallback counter records every eligible query the tier *could not*
  // serve (disabled tiers count nothing — the gap is not a fallback).
  const auto route = [&](auto&& fast, auto&& paged) {
    if (resident != nullptr) {
      ++worker->tier_hits[kind];
      fast();
    } else {
      if (options_.resident_tier) ++worker->tier_fallbacks[kind];
      paged();
    }
  };
  // The exact kinds must stay exact: approximation knobs ride only on
  // kApproxKnn, whose metrics and contract are separate by design.
  const bool approx_knobs_set =
      request.knn.epsilon != 0.0 || request.knn.max_visits != 0;
  switch (request.kind) {
    case QueryKind::kKnn: {
      if (approx_knobs_set) {
        response.status = Status::InvalidArgument(
            "epsilon/max_visits require the approx-knn kind");
        return response;
      }
      route(
          [&] {
            response.status = KnnSearchInto<D>(
                *resident, request.query, request.knn, &worker->scratch,
                &response.neighbors, &response.stats);
          },
          [&] {
            response.status = KnnSearchInto<D>(
                tree, request.query, request.knn, &worker->scratch,
                &response.neighbors, &response.stats);
          });
      return response;
    }
    case QueryKind::kConstrainedKnn: {
      if (approx_knobs_set ||
          request.knn.max_distance !=
              std::numeric_limits<double>::infinity()) {
        response.status = Status::InvalidArgument(
            "constrained kNN supports none of epsilon/max_visits/"
            "max_distance");
        return response;
      }
      auto result = ConstrainedKnnSearch<D>(tree, request.query,
                                            request.window, request.knn,
                                            &response.stats);
      if (result.ok()) {
        response.neighbors = std::move(result).value();
      } else {
        response.status = result.status();
      }
      return response;
    }
    case QueryKind::kRange: {
      response.status = tree.Search(request.window, &response.entries);
      return response;
    }
    case QueryKind::kTopK: {
      if (request.top_k < 1) {
        response.status = Status::InvalidArgument("top_k must be >= 1");
        return response;
      }
      const auto drain = [&](IncrementalKnn<D>& scan) {
        for (uint32_t i = 0; i < request.top_k; ++i) {
          auto next = scan.Next();
          if (!next.ok()) {
            response.status = next.status();
            return;
          }
          if (!next->has_value()) break;  // tree exhausted
          response.neighbors.push_back(**next);
        }
      };
      route(
          [&] {
            IncrementalKnn<D> scan(*resident, request.query, &worker->scratch,
                                   &response.stats);
            drain(scan);
          },
          [&] {
            IncrementalKnn<D> scan(tree, request.query, &worker->scratch,
                                   &response.stats);
            drain(scan);
          });
      return response;
    }
    case QueryKind::kBatchKnn: {
      if (approx_knobs_set) {
        response.status = Status::InvalidArgument(
            "epsilon/max_visits require the approx-knn kind");
        return response;
      }
      if (request.batch_queries.empty()) {
        response.batch_offsets.push_back(0);
        return response;
      }
      BatchKnnResult batch;
      route(
          [&] {
            response.status = KnnSearchBatch<D>(
                *resident, request.batch_queries.data(),
                request.batch_queries.size(), request.knn, &worker->scratch,
                &batch);
          },
          [&] {
            response.status = KnnSearchBatch<D>(
                tree, request.batch_queries.data(),
                request.batch_queries.size(), request.knn, &worker->scratch,
                &batch);
          });
      if (response.status.ok()) {
        response.neighbors = std::move(batch.neighbors);
        response.batch_offsets = std::move(batch.offsets);
        for (const QueryStats& qs : batch.stats) response.stats.Add(qs);
      }
      return response;
    }
    case QueryKind::kReverseKnn: {
      if constexpr (D == 2) {
        ReverseKnnOptions rknn;
        rknn.k = request.knn.k;
        if (request.rknn_candidates_only) {
          // Shard scatter path: sector candidates only, with geometry —
          // the router verifies against the global tree itself.
          route(
              [&] {
                response.status =
                    ReverseKnnCandidates(*resident, request.query, rknn,
                                         &worker->scratch, &response.entries,
                                         &response.stats);
              },
              [&] {
                response.status =
                    ReverseKnnCandidates(tree, request.query, rknn,
                                         &worker->scratch, &response.entries,
                                         &response.stats);
              });
        } else {
          route(
              [&] {
                response.status =
                    ReverseKnnSearch(*resident, request.query, rknn,
                                     &worker->scratch, &response.neighbors,
                                     &response.stats);
              },
              [&] {
                response.status =
                    ReverseKnnSearch(tree, request.query, rknn,
                                     &worker->scratch, &response.neighbors,
                                     &response.stats);
              });
        }
      } else {
        // The sector construction is planar (core/reverse_knn.h); surface
        // that as a client error instead of the historical link error.
        response.status = Status::InvalidArgument(
            "reverse-knn supports 2-D services only");
      }
      return response;
    }
    case QueryKind::kNnSkyline: {
      route(
          [&] {
            response.status = NnSkylineSearch<D>(
                *resident, request.batch_queries.data(),
                request.batch_queries.size(), &worker->scratch,
                &response.entries, &response.stats);
          },
          [&] {
            response.status = NnSkylineSearch<D>(
                tree, request.batch_queries.data(),
                request.batch_queries.size(), &worker->scratch,
                &response.entries, &response.stats);
          });
      return response;
    }
    case QueryKind::kApproxKnn: {
      route(
          [&] {
            response.status = KnnSearchInto<D>(
                *resident, request.query, request.knn, &worker->scratch,
                &response.neighbors, &response.stats);
          },
          [&] {
            response.status = KnnSearchInto<D>(
                tree, request.query, request.knn, &worker->scratch,
                &response.neighbors, &response.stats);
          });
      return response;
    }
    case QueryKind::kInsert:
    case QueryKind::kDelete:
    case QueryKind::kCheckpoint:
      // Submit routes write kinds to the writer thread; reaching a reader
      // worker with one is a bug.
      response.status =
          Status::Internal("write request dispatched to a query worker");
      return response;
  }
  response.status = Status::InvalidArgument("unknown query kind");
  return response;
}

template <int D>
Status QueryService<D>::CompileResident(PageId root_page, uint64_t tree_size,
                                        uint64_t source_epoch) {
  // A throwaway view + small pool: the walk reads every page exactly once
  // (pin depth 1), so worker pools and their statistics stay untouched.
  ReadOnlyDiskView disk(&db_->disk());
  BufferPool pool(&disk, /*capacity=*/64, options_.eviction);
  typename ResidentTree<D>::Options opts;
  opts.max_arena_bytes = options_.resident_max_bytes;
  opts.source_epoch = source_epoch;
  SPATIAL_ASSIGN_OR_RETURN(
      ResidentTree<D> compiled,
      ResidentTree<D>::Compile(&pool, root_page, tree_size, opts));
  resident_compile_ns_.Record(compiled.compile_ns());
  resident_compiles_.fetch_add(1, std::memory_order_relaxed);
  auto tree = std::make_shared<const ResidentTree<D>>(std::move(compiled));
  {
    std::lock_guard<std::mutex> lock(resident_mu_);
    resident_ = std::move(tree);
  }
  return Status::OK();
}

template <int D>
void QueryService<D>::DropStaleResident() {
  if (!options_.resident_tier || serving_db_ == nullptr) return;
  const TreeSnapshot snap = serving_db_->CurrentSnapshot();
  std::lock_guard<std::mutex> lock(resident_mu_);
  if (resident_ != nullptr && (resident_->source_epoch() != snap.epoch ||
                               resident_->root_page() != snap.root_page)) {
    resident_.reset();
    resident_invalidations_.fetch_add(1, std::memory_order_relaxed);
  }
}

template <int D>
Status QueryService<D>::RecompileResidentTier() {
  if (!options_.resident_tier) {
    return Status::InvalidArgument("resident tier is disabled");
  }
  if (serving_db_ == nullptr) {
    // Read-only trees never change; the startup compile either already
    // succeeded (workers hold it) or the tree is over the arena cap.
    std::lock_guard<std::mutex> lock(resident_mu_);
    return resident_ != nullptr
               ? Status::OK()
               : Status::ResourceExhausted(
                     "resident tree exceeds resident_max_bytes");
  }
  // Pin the snapshot for the whole walk so no page this version reaches
  // can be recycled mid-compile. If a write publishes a newer version
  // while we compile, the per-query epoch check simply never routes to
  // the result and the next write's DropStaleResident frees it.
  SPATIAL_ASSIGN_OR_RETURN(const uint32_t slot, serving_db_->RegisterReader());
  const TreeSnapshot snap = serving_db_->PinSnapshot(slot);
  const Status compiled = CompileResident(snap.root_page, snap.size,
                                          snap.epoch);
  serving_db_->UnpinSnapshot(slot);
  serving_db_->ReleaseReader(slot);
  return compiled;
}

template <int D>
std::shared_ptr<const ResidentTree<D>> QueryService<D>::resident_tree()
    const {
  std::lock_guard<std::mutex> lock(resident_mu_);
  return resident_;
}

template <int D>
void QueryService<D>::RegisterMetrics() {
  metrics_ = std::make_unique<obs::MetricsRegistry>();
  obs::SlowQueryLog::Options log_options;
  log_options.slow_capacity = options_.slow_log_capacity;
  log_options.sampled_capacity = options_.sampled_log_capacity;
  log_options.slow_threshold_ns = options_.slow_query_threshold_ns;
  slow_log_ = std::make_unique<obs::SlowQueryLog>(log_options);
  metrics_->AddCollector(
      [this](obs::ExpositionWriter& writer) { CollectMetrics(writer); });
}

namespace {

// Per-kind traversal counters, emitted one family per stat with a `kind`
// label. Member pointers keep the scrape in lockstep with QueryStats.
struct QueryStatField {
  const char* name;
  const char* help;
  uint64_t QueryStats::*field;
};

constexpr QueryStatField kQueryStatFields[] = {
    {"spatial_query_nodes_visited_total", "R-tree pages fetched by queries",
     &QueryStats::nodes_visited},
    {"spatial_query_leaf_nodes_visited_total", "Leaf pages fetched",
     &QueryStats::leaf_nodes_visited},
    {"spatial_query_internal_nodes_visited_total", "Internal pages fetched",
     &QueryStats::internal_nodes_visited},
    {"spatial_query_abl_entries_generated_total",
     "Active branch list entries considered",
     &QueryStats::abl_entries_generated},
    {"spatial_query_pruned_s1_total",
     "Branches pruned by strategy 1 (MINDIST > sibling MINMAXDIST)",
     &QueryStats::pruned_s1},
    {"spatial_query_estimate_updates_s2_total",
     "NN estimate updates from strategy 2 (MINMAXDIST)",
     &QueryStats::estimate_updates_s2},
    {"spatial_query_pruned_s3_total",
     "Branches pruned by strategy 3 (MINDIST > k-th nearest)",
     &QueryStats::pruned_s3},
    {"spatial_query_pruned_leaf_total",
     "Leaf entries skipped before distance evaluation",
     &QueryStats::pruned_leaf},
    {"spatial_query_objects_examined_total", "Objects distance-tested",
     &QueryStats::objects_examined},
    {"spatial_query_distance_computations_total",
     "Distance kernel evaluations", &QueryStats::distance_computations},
    {"spatial_query_heap_pushes_total",
     "Best-first / incremental heap pushes", &QueryStats::heap_pushes},
    {"spatial_query_heap_pops_total", "Best-first / incremental heap pops",
     &QueryStats::heap_pops},
};

std::string KindLabel(QueryKind kind) {
  std::string label = "kind=\"";
  label += QueryKindName(kind);
  label += '"';
  return label;
}

}  // namespace

template <int D>
void QueryService<D>::CollectMetrics(obs::ExpositionWriter& writer) const {
  const ServiceStats stats = Snapshot();

  writer.Family("spatial_workers", "Query worker threads",
                obs::MetricType::kGauge);
  writer.Sample("spatial_workers", "",
                static_cast<uint64_t>(stats.workers));
  writer.Family("spatial_uptime_seconds",
                "Seconds since service start (or ResetStats)",
                obs::MetricType::kGauge);
  writer.Sample("spatial_uptime_seconds", "", stats.elapsed_seconds);

  writer.Family("spatial_queries_total",
                "Completed queries by outcome", obs::MetricType::kCounter);
  writer.Sample("spatial_queries_total", "outcome=\"ok\"", stats.queries_ok);
  writer.Sample("spatial_queries_total", "outcome=\"failed\"",
                stats.queries_failed);

  writer.Family("spatial_queries_by_kind_total",
                "Completed requests by query kind",
                obs::MetricType::kCounter);
  for (int k = 0; k < kNumQueryKinds; ++k) {
    const QueryKind kind = static_cast<QueryKind>(k);
    writer.Sample("spatial_queries_by_kind_total", KindLabel(kind),
                  KindQueryCount(kind));
  }

  // Traversal counters per read kind (write kinds never produce
  // QueryStats; their shards stay zero and are elided).
  QueryStats per_kind[kNumQueryKinds];
  for (int k = 0; k < kNumQueryKinds; ++k) {
    per_kind[k] = KindQueryStats(static_cast<QueryKind>(k));
  }
  for (const QueryStatField& field : kQueryStatFields) {
    writer.Family(field.name, field.help, obs::MetricType::kCounter);
    for (int k = 0; k < kNumQueryKinds; ++k) {
      const QueryKind kind = static_cast<QueryKind>(k);
      if (IsWriteKind(kind)) continue;
      writer.Sample(field.name, KindLabel(kind), per_kind[k].*field.field);
    }
  }

  writer.Family("spatial_buffer_logical_fetches_total",
                "Buffer pool Fetch() calls (the paper's page accesses)",
                obs::MetricType::kCounter);
  writer.Sample("spatial_buffer_logical_fetches_total", "",
                static_cast<uint64_t>(stats.buffer.logical_fetches));
  writer.Family("spatial_buffer_hits_total", "Buffer pool hits",
                obs::MetricType::kCounter);
  writer.Sample("spatial_buffer_hits_total", "",
                static_cast<uint64_t>(stats.buffer.hits));
  writer.Family("spatial_buffer_misses_total", "Buffer pool misses",
                obs::MetricType::kCounter);
  writer.Sample("spatial_buffer_misses_total", "",
                static_cast<uint64_t>(stats.buffer.misses));
  writer.Family("spatial_buffer_evictions_total", "Buffer pool evictions",
                obs::MetricType::kCounter);
  writer.Sample("spatial_buffer_evictions_total", "",
                static_cast<uint64_t>(stats.buffer.evictions));
  writer.Family("spatial_buffer_hit_rate",
                "Buffer pool hit rate since start/reset",
                obs::MetricType::kGauge);
  writer.Sample("spatial_buffer_hit_rate", "", stats.buffer.HitRate());

  writer.Family("spatial_io_physical_reads_total",
                "Physical page reads (buffer pool misses reaching disk)",
                obs::MetricType::kCounter);
  writer.Sample("spatial_io_physical_reads_total", "",
                static_cast<uint64_t>(stats.io.physical_reads));

  writer.Family("spatial_query_latency_ns",
                "Per-query wall time inside the worker",
                obs::MetricType::kHistogram);
  writer.Histogram("spatial_query_latency_ns", "", stats.latency);
  writer.Family("spatial_queue_wait_ns",
                "Submit-to-dequeue wait per request",
                obs::MetricType::kHistogram);
  writer.Histogram("spatial_queue_wait_ns", "", stats.queue_wait);

  obs::HistogramSnapshot read_latency;
  for (const auto& worker : workers_) {
    read_latency += worker->read_latency.Snapshot();
  }
  writer.Family("spatial_read_latency_ns",
                "Physical page-read latency (miss path)",
                obs::MetricType::kHistogram);
  writer.Histogram("spatial_read_latency_ns", "", read_latency);

  writer.Family("spatial_slow_queries_recorded_total",
                "Queries offered to the slow/sampled query log",
                obs::MetricType::kCounter);
  writer.Sample("spatial_slow_queries_recorded_total", "",
                slow_log_->total_recorded());
  writer.Family("spatial_slow_queries_retained",
                "Entries currently retained in the slow-query log",
                obs::MetricType::kGauge);
  writer.Sample("spatial_slow_queries_retained", "population=\"slow\"",
                static_cast<uint64_t>(slow_log_->slow_captured()));
  writer.Sample("spatial_slow_queries_retained", "population=\"sampled\"",
                static_cast<uint64_t>(slow_log_->sampled_captured()));

  // Resident tier (docs/PERF.md "Resident tier"). The gauges describe the
  // currently published arena (zero after an invalidation); the routing
  // counters cover only resident-eligible kinds.
  writer.Family("spatial_resident_arena_bytes",
                "Bytes in the published resident-tier arena",
                obs::MetricType::kGauge);
  writer.Sample("spatial_resident_arena_bytes", "",
                stats.resident_arena_bytes);
  writer.Family("spatial_resident_nodes",
                "Nodes compiled into the published resident-tier arena",
                obs::MetricType::kGauge);
  writer.Sample("spatial_resident_nodes",
                "", static_cast<uint64_t>(stats.resident_nodes));
  writer.Family("spatial_resident_compiles_total",
                "Resident-tier arena compilations",
                obs::MetricType::kCounter);
  writer.Sample("spatial_resident_compiles_total", "",
                stats.resident_compiles);
  writer.Family("spatial_resident_invalidations_total",
                "Resident-tier arenas dropped after a write published a "
                "new tree version",
                obs::MetricType::kCounter);
  writer.Sample("spatial_resident_invalidations_total", "",
                stats.resident_invalidations);
  writer.Family("spatial_resident_compile_ns",
                "Resident-tier compile duration",
                obs::MetricType::kHistogram);
  writer.Histogram("spatial_resident_compile_ns", "",
                   resident_compile_ns_.Snapshot());
  writer.Family("spatial_resident_queries_total",
                "Resident-eligible queries by serving tier",
                obs::MetricType::kCounter);
  for (int k = 0; k < kNumQueryKinds; ++k) {
    const QueryKind kind = static_cast<QueryKind>(k);
    if (!IsResidentEligible(kind)) continue;
    uint64_t hits = 0;
    uint64_t fallbacks = 0;
    for (const auto& worker : workers_) {
      hits += worker->tier_hits[k];
      fallbacks += worker->tier_fallbacks[k];
    }
    writer.Sample("spatial_resident_queries_total",
                  KindLabel(kind) + ",tier=\"resident\"", hits);
    writer.Sample("spatial_resident_queries_total",
                  KindLabel(kind) + ",tier=\"paged\"", fallbacks);
  }

  if (serving_db_ == nullptr) return;

  writer.Family("spatial_writes_total",
                "Durable write requests by outcome",
                obs::MetricType::kCounter);
  writer.Sample("spatial_writes_total", "outcome=\"ok\"", stats.writes_ok);
  writer.Sample("spatial_writes_total", "outcome=\"failed\"",
                stats.writes_failed);
  writer.Family("spatial_checkpoints_total", "Completed checkpoints",
                obs::MetricType::kCounter);
  writer.Sample("spatial_checkpoints_total", "", stats.checkpoints);

  writer.Family("spatial_snapshot_epoch",
                "Current published snapshot epoch", obs::MetricType::kGauge);
  writer.Sample("spatial_snapshot_epoch", "", serving_db_->epoch());
  writer.Family("spatial_reclaim_gen",
                "Page-reclamation generation (bumps when a checkpoint "
                "recycles page ids)",
                obs::MetricType::kGauge);
  writer.Sample("spatial_reclaim_gen", "", serving_db_->reclaim_gen());
  writer.Family("spatial_last_lsn", "Last durable log sequence number",
                obs::MetricType::kGauge);
  writer.Sample("spatial_last_lsn", "", serving_db_->last_lsn());
  writer.Family("spatial_retired_pages",
                "COW-retired pages awaiting reclamation (reclamation depth)",
                obs::MetricType::kGauge);
  writer.Sample("spatial_retired_pages", "", serving_db_->retired_pages());
  writer.Family("spatial_reclaimed_pages_total",
                "Pages recycled by checkpoints", obs::MetricType::kCounter);
  writer.Sample("spatial_reclaimed_pages_total", "",
                serving_db_->reclaimed_pages_total());

  const obs::WalMetrics& wal = serving_db_->wal_metrics();
  writer.Family("spatial_wal_fsync_ns",
                "WAL fsync latency per group commit",
                obs::MetricType::kHistogram);
  writer.Histogram("spatial_wal_fsync_ns", "", wal.fsync_ns.Snapshot());
  writer.Family("spatial_wal_commit_records",
                "Records per WAL group commit (batch size)",
                obs::MetricType::kHistogram);
  writer.Histogram("spatial_wal_commit_records", "",
                   wal.commit_records.Snapshot());
  writer.Family("spatial_wal_commit_bytes", "Bytes per WAL group commit",
                obs::MetricType::kHistogram);
  writer.Histogram("spatial_wal_commit_bytes", "",
                   wal.commit_bytes.Snapshot());
  writer.Family("spatial_checkpoint_sync_ns",
                "Data-file fsync latency during checkpoints",
                obs::MetricType::kHistogram);
  writer.Histogram("spatial_checkpoint_sync_ns", "",
                   serving_db_->checkpoint_sync_histogram().Snapshot());
}

template <int D>
ServiceStats QueryService<D>::Snapshot() const {
  ServiceStats stats;
  stats.workers = static_cast<uint32_t>(workers_.size());
  stats.writes_ok = writes_ok_.load(std::memory_order_relaxed);
  stats.writes_failed = writes_failed_.load(std::memory_order_relaxed);
  stats.checkpoints = checkpoints_.load(std::memory_order_relaxed);
  stats.elapsed_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    epoch_)
          .count();
  stats.resident_compiles =
      resident_compiles_.load(std::memory_order_relaxed);
  stats.resident_invalidations =
      resident_invalidations_.load(std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(resident_mu_);
    if (resident_ != nullptr) {
      stats.resident_arena_bytes = resident_->arena_bytes();
      stats.resident_nodes = resident_->node_count();
    }
  }
  for (const auto& worker : workers_) {
    stats.queries_ok += worker->ok.load(std::memory_order_relaxed);
    stats.queries_failed += worker->failed.load(std::memory_order_relaxed);
    stats.io += worker->disk->stats();
    stats.buffer += worker->pool->stats();
    for (int kind = 0; kind < kNumQueryKinds; ++kind) {
      stats.query.Add(worker->kind_stats[kind].Snapshot());
      stats.resident_hits += worker->tier_hits[kind];
      stats.resident_fallbacks += worker->tier_fallbacks[kind];
    }
    stats.latency += worker->histogram.Snapshot();
    stats.queue_wait += worker->queue_wait.Snapshot();
  }
  return stats;
}

template <int D>
QueryStats QueryService<D>::KindQueryStats(QueryKind kind) const {
  QueryStats stats;
  const int k = static_cast<int>(kind);
  for (const auto& worker : workers_) {
    stats.Add(worker->kind_stats[k].Snapshot());
  }
  return stats;
}

template <int D>
uint64_t QueryService<D>::KindQueryCount(QueryKind kind) const {
  uint64_t n = 0;
  const int k = static_cast<int>(kind);
  for (const auto& worker : workers_) n += worker->kind_count[k];
  return n;
}

template <int D>
void QueryService<D>::ResetStats() {
  for (const auto& worker : workers_) {
    worker->disk->ResetStats();
    worker->pool->ResetStats();
    for (int kind = 0; kind < kNumQueryKinds; ++kind) {
      worker->kind_stats[kind].Reset();
      worker->kind_count[kind] = 0;
      worker->tier_hits[kind] = 0;
      worker->tier_fallbacks[kind] = 0;
    }
    worker->histogram.Reset();
    worker->queue_wait.Reset();
    worker->read_latency.Reset();
    worker->ok.store(0, std::memory_order_relaxed);
    worker->failed.store(0, std::memory_order_relaxed);
  }
  writes_ok_.store(0, std::memory_order_relaxed);
  writes_failed_.store(0, std::memory_order_relaxed);
  checkpoints_.store(0, std::memory_order_relaxed);
  epoch_ = std::chrono::steady_clock::now();
}

template class QueryService<2>;
template class QueryService<3>;

}  // namespace spatial
