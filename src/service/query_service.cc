#include "service/query_service.h"

#include <utility>

#include "core/constrained.h"
#include "core/incremental.h"
#include "core/knn.h"

namespace spatial {

const char* QueryKindName(QueryKind kind) {
  switch (kind) {
    case QueryKind::kKnn:
      return "knn";
    case QueryKind::kConstrainedKnn:
      return "constrained-knn";
    case QueryKind::kRange:
      return "range";
    case QueryKind::kTopK:
      return "top-k";
    case QueryKind::kBatchKnn:
      return "batch-knn";
  }
  return "unknown";
}

template <int D>
QueryService<D>::QueryService(const SpatialDb<D>* db,
                              std::unique_ptr<SpatialDb<D>> owned,
                              const Options& options)
    : options_(options),
      owned_db_(std::move(owned)),
      db_(db),
      queue_(options.queue_capacity),
      epoch_(std::chrono::steady_clock::now()) {}

template <int D>
Result<std::unique_ptr<QueryService<D>>> QueryService<D>::Open(
    const std::string& path, uint32_t page_size, const Options& options) {
  SPATIAL_RETURN_IF_ERROR(options.Validate());
  // The service's own pool is used only to decode the superblock and
  // validate the root; queries run through the per-worker pools.
  SPATIAL_ASSIGN_OR_RETURN(
      SpatialDb<D> db,
      SpatialDb<D>::OpenFromFileReadOnly(path, page_size,
                                         /*buffer_pages=*/16));
  auto owned = std::make_unique<SpatialDb<D>>(std::move(db));
  const SpatialDb<D>* raw = owned.get();
  std::unique_ptr<QueryService<D>> service(
      new QueryService<D>(raw, std::move(owned), options));
  SPATIAL_RETURN_IF_ERROR(service->StartWorkers());
  return service;
}

template <int D>
Result<std::unique_ptr<QueryService<D>>> QueryService<D>::Attach(
    const SpatialDb<D>& db, const Options& options) {
  SPATIAL_RETURN_IF_ERROR(options.Validate());
  std::unique_ptr<QueryService<D>> service(
      new QueryService<D>(&db, nullptr, options));
  SPATIAL_RETURN_IF_ERROR(service->StartWorkers());
  return service;
}

template <int D>
Status QueryService<D>::StartWorkers() {
  // Build every worker's private view/pool/tree before the first thread
  // starts, so worker construction needs no synchronization.
  for (uint32_t i = 0; i < options_.num_workers; ++i) {
    auto worker = std::make_unique<Worker>();
    worker->disk = std::make_unique<ReadOnlyDiskView>(
        &db_->disk(), options_.simulated_read_latency_us);
    worker->pool = std::make_unique<BufferPool>(
        worker->disk.get(), options_.frames_per_worker, options_.eviction);
    SPATIAL_ASSIGN_OR_RETURN(
        RTree<D> tree,
        RTree<D>::Open(worker->pool.get(), db_->tree().options(),
                       db_->tree().root_page(), db_->tree().size()));
    worker->tree.emplace(std::move(tree));
    workers_.push_back(std::move(worker));
  }
  epoch_ = std::chrono::steady_clock::now();
  threads_.reserve(options_.num_workers);
  for (uint32_t i = 0; i < options_.num_workers; ++i) {
    threads_.emplace_back(&QueryService<D>::WorkerLoop, this,
                          workers_[i].get(), i);
  }
  return Status::OK();
}

template <int D>
QueryService<D>::~QueryService() {
  Shutdown();
}

template <int D>
void QueryService<D>::Shutdown() {
  stopped_.store(true, std::memory_order_release);
  queue_.Close();
  for (std::thread& t : threads_) {
    if (t.joinable()) t.join();
  }
  threads_.clear();
}

template <int D>
std::future<QueryResponse<D>> QueryService<D>::Submit(
    QueryRequest<D> request) {
  Task task;
  task.request = std::move(request);
  std::future<QueryResponse<D>> future = task.promise.get_future();
  if (!queue_.Push(std::move(task))) {
    // Queue closed; Push left `task` intact, so answer inline.
    QueryResponse<D> response;
    response.status = Status::InvalidArgument("query service is shut down");
    task.promise.set_value(std::move(response));
  }
  return future;
}

template <int D>
QueryResponse<D> QueryService<D>::Execute(QueryRequest<D> request) {
  return Submit(std::move(request)).get();
}

template <int D>
void QueryService<D>::WorkerLoop(Worker* worker, uint32_t worker_id) {
  while (std::optional<Task> task = queue_.Pop()) {
    const auto start = std::chrono::steady_clock::now();
    QueryResponse<D> response = Dispatch(worker, task->request);
    const auto end = std::chrono::steady_clock::now();
    const uint64_t ns = static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(end - start)
            .count());
    response.latency_ns = ns;
    response.worker_id = worker_id;
    worker->histogram.Record(ns);
    (response.ok() ? worker->ok : worker->failed)
        .fetch_add(1, std::memory_order_relaxed);
    worker->query_stats.Add(response.stats);
    task->promise.set_value(std::move(response));
  }
}

template <int D>
QueryResponse<D> QueryService<D>::Dispatch(Worker* worker,
                                           const QueryRequest<D>& request) {
  QueryResponse<D> response;
  const RTree<D>& tree = *worker->tree;
  switch (request.kind) {
    case QueryKind::kKnn: {
      response.status =
          KnnSearchInto<D>(tree, request.query, request.knn, &worker->scratch,
                           &response.neighbors, &response.stats);
      return response;
    }
    case QueryKind::kConstrainedKnn: {
      auto result = ConstrainedKnnSearch<D>(tree, request.query,
                                            request.window, request.knn,
                                            &response.stats);
      if (result.ok()) {
        response.neighbors = std::move(result).value();
      } else {
        response.status = result.status();
      }
      return response;
    }
    case QueryKind::kRange: {
      response.status = tree.Search(request.window, &response.entries);
      return response;
    }
    case QueryKind::kTopK: {
      if (request.top_k < 1) {
        response.status = Status::InvalidArgument("top_k must be >= 1");
        return response;
      }
      IncrementalKnn<D> scan(tree, request.query, &worker->scratch,
                             &response.stats);
      for (uint32_t i = 0; i < request.top_k; ++i) {
        auto next = scan.Next();
        if (!next.ok()) {
          response.status = next.status();
          return response;
        }
        if (!next->has_value()) break;  // tree exhausted
        response.neighbors.push_back(**next);
      }
      return response;
    }
    case QueryKind::kBatchKnn: {
      if (request.batch_queries.empty()) {
        response.batch_offsets.push_back(0);
        return response;
      }
      BatchKnnResult batch;
      response.status = KnnSearchBatch<D>(
          tree, request.batch_queries.data(), request.batch_queries.size(),
          request.knn, &worker->scratch, &batch);
      if (response.status.ok()) {
        response.neighbors = std::move(batch.neighbors);
        response.batch_offsets = std::move(batch.offsets);
        for (const QueryStats& qs : batch.stats) response.stats.Add(qs);
      }
      return response;
    }
  }
  response.status = Status::InvalidArgument("unknown query kind");
  return response;
}

template <int D>
ServiceStats QueryService<D>::Stats() const {
  ServiceStats stats;
  stats.workers = static_cast<uint32_t>(workers_.size());
  stats.elapsed_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    epoch_)
          .count();
  for (const auto& worker : workers_) {
    stats.queries_ok += worker->ok.load(std::memory_order_relaxed);
    stats.queries_failed += worker->failed.load(std::memory_order_relaxed);
    stats.io += worker->disk->stats();
    stats.buffer += worker->pool->stats();
    stats.query.Add(worker->query_stats);
    stats.latency += worker->histogram.Snapshot();
  }
  return stats;
}

template <int D>
void QueryService<D>::ResetStats() {
  for (const auto& worker : workers_) {
    worker->disk->ResetStats();
    worker->pool->ResetStats();
    worker->query_stats.Reset();
    worker->histogram.Reset();
    worker->ok.store(0, std::memory_order_relaxed);
    worker->failed.store(0, std::memory_order_relaxed);
  }
  epoch_ = std::chrono::steady_clock::now();
}

template class QueryService<2>;
template class QueryService<3>;

}  // namespace spatial
