#include "db/spatial_db.h"

#include <cstdio>
#include <utility>

#include "common/macros.h"
#include "storage/disk_manager.h"
#include "storage/file_disk_manager.h"

namespace spatial {

template <int D>
Result<SpatialDb<D>> SpatialDb<D>::CreateInMemory(const Options& options) {
  return InitCommon(std::make_unique<DiskManager>(options.page_size),
                    /*file_backed=*/false, options);
}

template <int D>
Result<SpatialDb<D>> SpatialDb<D>::CreateOnFile(const std::string& path,
                                                const Options& options) {
  SPATIAL_ASSIGN_OR_RETURN(FileDiskManager file_disk,
                           FileDiskManager::Create(path, options.page_size));
  return InitCommon(std::make_unique<FileDiskManager>(std::move(file_disk)),
                    /*file_backed=*/true, options);
}

template <int D>
Result<SpatialDb<D>> SpatialDb<D>::InitCommon(std::unique_ptr<Disk> disk,
                                              bool file_backed,
                                              const Options& options) {
  SPATIAL_RETURN_IF_ERROR(options.tree.Validate());
  SpatialDb<D> db;
  db.disk_ = std::move(disk);
  db.file_backed_ = file_backed;
  db.pool_ = std::make_unique<BufferPool>(db.disk_.get(),
                                          options.buffer_pages);
  // The superblock must be the first allocation so reopen can find it.
  {
    SPATIAL_ASSIGN_OR_RETURN(PageHandle meta, db.pool_->NewPage());
    if (meta.id() != 0) {
      return Status::Internal("superblock did not land on page 0");
    }
    db.meta_page_ = meta.id();
    meta.MarkDirty();
  }
  SPATIAL_ASSIGN_OR_RETURN(RTree<D> tree,
                           RTree<D>::Create(db.pool_.get(), options.tree));
  db.tree_.emplace(std::move(tree));
  SPATIAL_RETURN_IF_ERROR(db.Flush());
  return db;
}

template <int D>
Result<SpatialDb<D>> SpatialDb<D>::OpenFromFile(const std::string& path,
                                                uint32_t page_size,
                                                uint32_t buffer_pages) {
  SPATIAL_ASSIGN_OR_RETURN(FileDiskManager file_disk,
                           FileDiskManager::Open(path, page_size));
  return OpenFromDisk(std::make_unique<FileDiskManager>(std::move(file_disk)),
                      page_size, buffer_pages, /*read_only=*/false);
}

template <int D>
Result<SpatialDb<D>> SpatialDb<D>::OpenFromFileReadOnly(
    const std::string& path, uint32_t page_size, uint32_t buffer_pages) {
  SPATIAL_ASSIGN_OR_RETURN(FileDiskManager file_disk,
                           FileDiskManager::OpenReadOnly(path, page_size));
  return OpenFromDisk(std::make_unique<FileDiskManager>(std::move(file_disk)),
                      page_size, buffer_pages, /*read_only=*/true);
}

template <int D>
Result<SpatialDb<D>> SpatialDb<D>::OpenOnDisk(std::unique_ptr<Disk> disk,
                                              uint32_t page_size,
                                              uint32_t buffer_pages) {
  if (disk == nullptr) {
    return Status::InvalidArgument("OpenOnDisk: disk is null");
  }
  return OpenFromDisk(std::move(disk), page_size, buffer_pages,
                      /*read_only=*/false);
}

template <int D>
Result<SpatialDb<D>> SpatialDb<D>::OpenFromDisk(std::unique_ptr<Disk> disk,
                                                uint32_t page_size,
                                                uint32_t buffer_pages,
                                                bool read_only) {
  SpatialDb<D> db;
  db.disk_ = std::move(disk);
  db.file_backed_ = true;
  db.read_only_ = read_only;
  db.pool_ = std::make_unique<BufferPool>(db.disk_.get(), buffer_pages);
  db.meta_page_ = 0;

  MetaRecord meta;
  {
    SPATIAL_ASSIGN_OR_RETURN(PageHandle page, db.pool_->Fetch(0));
    SPATIAL_RETURN_IF_ERROR(DecodeMetaPage(page.data(), page_size, &meta));
  }
  if (meta.dimension != D) {
    return Status::InvalidArgument(
        "database holds " + std::to_string(meta.dimension) +
        "-dimensional data, opened as " + std::to_string(D) + "-D");
  }
  // The superblock's page count is a claim about the file, not a fact:
  // verify it against the actual file span so a truncated copy (partial
  // download, bad restore) fails here with a clear story instead of as a
  // bad-magic error — or silent garbage — deep inside a traversal.
  const uint64_t span = db.disk_->page_span();
  if (meta.num_pages > span) {
    return Status::Corruption(
        "file is truncated: superblock covers " +
        std::to_string(meta.num_pages) + " pages, file holds " +
        std::to_string(span));
  }
  if (meta.root_page != kInvalidPageId && meta.root_page >= span) {
    return Status::Corruption("root page " + std::to_string(meta.root_page) +
                              " is outside the file");
  }
  db.epoch_ = meta.epoch;
  db.checkpoint_lsn_ = meta.checkpoint_lsn;
  db.wal_seq_ = meta.wal_seq;
  if (!read_only) {
    // Resume reusing pages the previous incarnation freed.
    db.disk_->AdoptFreeList(meta.free_pages);
  }
  RTreeOptions tree_options;
  tree_options.split = meta.split;
  tree_options.min_fill = meta.min_fill;
  tree_options.rstar_reinsert = meta.rstar_reinsert;
  tree_options.reinsert_fraction = meta.reinsert_fraction;
  SPATIAL_ASSIGN_OR_RETURN(
      RTree<D> tree, RTree<D>::Open(db.pool_.get(), tree_options,
                                    meta.root_page, meta.size));
  db.tree_.emplace(std::move(tree));
  return db;
}

template <int D>
SpatialDb<D>::~SpatialDb() {
  // Guard against moved-from shells (pool_ is null after a move); a
  // read-only or Close()d database has nothing to write back.
  if (pool_ != nullptr && tree_.has_value() && !read_only_ && !closed_) {
    const Status flushed = Flush();
    if (!flushed.ok()) {
      // A destructor cannot return the error, but it must not eat it
      // either: data since the last successful Flush()/Close() may be
      // lost. Callers who care should Close() explicitly.
      std::fprintf(stderr,
                   "SpatialDb: flush in destructor failed, recent writes "
                   "may not be durable: %s\n",
                   flushed.ToString().c_str());
    }
  }
}

template <int D>
Status SpatialDb<D>::Close() {
  if (closed_ || pool_ == nullptr || !tree_.has_value()) {
    return Status::OK();
  }
  if (!read_only_) {
    SPATIAL_RETURN_IF_ERROR(Flush());
  }
  closed_ = true;
  return Status::OK();
}

template <int D>
Status SpatialDb<D>::BulkLoadData(std::vector<Entry<D>> items,
                                  BulkLoadMethod method) {
  if (read_only_) {
    return Status::InvalidArgument("BulkLoadData: database is read-only");
  }
  if (!tree_->empty()) {
    return Status::AlreadyExists(
        "BulkLoadData requires an empty database");
  }
  const PageId old_root = tree_->root_page();
  SPATIAL_ASSIGN_OR_RETURN(
      RTree<D> tree, BulkLoad<D>(pool_.get(), tree_->options(),
                                 std::move(items), method));
  tree_.emplace(std::move(tree));
  SPATIAL_RETURN_IF_ERROR(pool_->FreePage(old_root));
  return Flush();
}

template <int D>
Status SpatialDb<D>::Flush() {
  if (read_only_) {
    return Status::InvalidArgument("Flush: database is read-only");
  }
  {
    SPATIAL_ASSIGN_OR_RETURN(PageHandle page, pool_->Fetch(meta_page_));
    MetaRecord meta;
    meta.page_size = disk_->page_size();
    meta.dimension = D;
    meta.root_page = tree_->root_page();
    meta.size = tree_->size();
    meta.root_level = static_cast<uint16_t>(tree_->height() - 1);
    meta.split = tree_->options().split;
    meta.min_fill = tree_->options().min_fill;
    meta.rstar_reinsert = tree_->options().rstar_reinsert;
    meta.reinsert_fraction = tree_->options().reinsert_fraction;
    meta.num_pages = static_cast<uint32_t>(disk_->page_span());
    meta.epoch = epoch_;
    meta.checkpoint_lsn = checkpoint_lsn_;
    meta.wal_seq = wal_seq_;
    meta.free_pages = disk_->FreeListSnapshot();
    EncodeMetaPage(meta, page.data(), disk_->page_size());
    page.MarkDirty();
  }
  SPATIAL_RETURN_IF_ERROR(pool_->FlushAll());
  if (file_backed_) {
    // Virtual Sync so interposed disks (fault injection) see the barrier.
    SPATIAL_RETURN_IF_ERROR(disk_->Sync());
  }
  return Status::OK();
}

template class SpatialDb<2>;
template class SpatialDb<3>;

}  // namespace spatial
