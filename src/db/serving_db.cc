#include "db/serving_db.h"

#include <chrono>
#include <cstdio>
#include <utility>

#include "common/macros.h"
#include "storage/faulty_disk.h"
#include "storage/file_disk_manager.h"
#include "wal/wal_reader.h"

namespace spatial {
namespace {

bool FileExists(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return false;
  std::fclose(f);
  return true;
}

}  // namespace

template <int D>
Result<std::unique_ptr<ServingDb<D>>> ServingDb<D>::Open(
    const std::string& path, const ServingOptions& options) {
  static_assert(D <= kWalMaxDim, "WAL records hold at most kWalMaxDim axes");
  SPATIAL_RETURN_IF_ERROR(options.tree.Validate());
  if (options.max_reader_slots == 0) {
    return Status::InvalidArgument("serving: need at least one reader slot");
  }

  bool created = false;
  if (!FileExists(path)) {
    if (!options.create_if_missing) {
      return Status::NotFound("no database at " + path);
    }
    // Creation happens outside fault injection: the crash matrix models
    // crashes of a *running* database, and a half-created empty file has
    // nothing to recover anyway.
    typename SpatialDb<D>::Options db_options;
    db_options.page_size = options.page_size;
    db_options.buffer_pages = options.buffer_pages;
    db_options.tree = options.tree;
    SPATIAL_ASSIGN_OR_RETURN(SpatialDb<D> fresh,
                             SpatialDb<D>::CreateOnFile(path, db_options));
    SPATIAL_RETURN_IF_ERROR(fresh.Close());
    created = true;
  }

  SPATIAL_ASSIGN_OR_RETURN(FileDiskManager file_disk,
                           FileDiskManager::Open(path, options.page_size));
  std::unique_ptr<Disk> disk =
      std::make_unique<FileDiskManager>(std::move(file_disk));
  if (options.injector != nullptr) {
    disk = std::make_unique<FaultyDiskManager>(std::move(disk),
                                               options.injector);
  }
  SPATIAL_ASSIGN_OR_RETURN(
      SpatialDb<D> db,
      SpatialDb<D>::OpenOnDisk(std::move(disk), options.page_size,
                               options.buffer_pages));

  std::unique_ptr<ServingDb<D>> sdb(new ServingDb<D>(path, options));
  sdb->db_ = std::make_unique<SpatialDb<D>>(std::move(db));
  sdb->epoch_ = sdb->db_->epoch();
  sdb->last_lsn_ = sdb->db_->checkpoint_lsn();
  sdb->recovery_info_.checkpoint_lsn = sdb->db_->checkpoint_lsn();
  sdb->recovery_info_.created = created;

  // COW goes on BEFORE replay: recovery mutations must never overwrite a
  // page the durable checkpoint root can reach, or a crash *during*
  // recovery would corrupt the one good copy of the tree.
  sdb->db_->tree().SetCowPolicy(&sdb->version_table_);
  sdb->version_table_.BeginEpoch(sdb->epoch_);

  SPATIAL_RETURN_IF_ERROR(sdb->Replay(sdb->db_->wal_seq()));

  // First publication: readers may pin as soon as Open returns.
  sdb->epoch_ += 1;
  sdb->PublishCurrent();
  sdb->version_table_.BeginEpoch(sdb->epoch_);

  // Fold the replayed tail into the base file right away; recovery work is
  // not redone if the process dies again before the first natural
  // checkpoint.
  SPATIAL_RETURN_IF_ERROR(sdb->Checkpoint());
  return sdb;
}

template <int D>
Status ServingDb<D>::Replay(uint64_t start_seq) {
  SPATIAL_ASSIGN_OR_RETURN(WalReplayIterator it,
                           WalReplayIterator::Open(path_, start_seq));
  WalRecord rec;
  while (true) {
    SPATIAL_ASSIGN_OR_RETURN(const bool more, it.Next(&rec));
    if (!more) break;
    if (rec.type == WalRecordType::kCheckpoint) continue;
    if (rec.lsn <= recovery_info_.checkpoint_lsn) continue;  // already folded
    if (rec.dim != D) {
      return Status::Corruption(
          "wal record is " + std::to_string(rec.dim) + "-dimensional in a " +
          std::to_string(D) + "-D database");
    }
    Rect<D> mbr;
    for (int d = 0; d < D; ++d) {
      mbr.lo[d] = rec.lo[d];
      mbr.hi[d] = rec.hi[d];
    }
    if (rec.type == WalRecordType::kInsert) {
      SPATIAL_RETURN_IF_ERROR(db_->tree().Insert(mbr, rec.object_id));
    } else {
      // A delete whose target is already gone replays as a no-op; the
      // outcome bit was only ever reported to the original caller.
      SPATIAL_ASSIGN_OR_RETURN(const bool removed,
                               db_->tree().Delete(mbr, rec.object_id));
      (void)removed;
    }
    recovery_info_.replayed_records += 1;
    if (rec.lsn > last_lsn_) last_lsn_ = rec.lsn;
  }
  recovery_info_.recovered_lsn = last_lsn_;
  recovery_info_.tail_torn = it.tail_torn();

  // Repair a torn tail BEFORE any later segment can exist; otherwise the
  // discarded ragged record would read as mid-log corruption next time.
  if (it.tail_torn()) {
    SPATIAL_RETURN_IF_ERROR(WalWriter::TruncateSegment(
        path_, it.torn_seq(), it.torn_keep_bytes()));
  }
  WalOptions wal_options;
  wal_options.segment_bytes = options_.wal_segment_bytes;
  SPATIAL_ASSIGN_OR_RETURN(
      WalWriter wal, WalWriter::Open(path_, it.next_seq(), wal_options,
                                     options_.injector));
  wal_.emplace(std::move(wal));
  wal_->set_metrics(&wal_metrics_);
  return Status::OK();
}

template <int D>
void ServingDb<D>::PublishCurrent() {
  TreeSnapshot snap;
  snap.root_page = db_->tree().root_page();
  snap.root_level = static_cast<uint16_t>(db_->tree().height() - 1);
  snap.size = db_->tree().size();
  snap.epoch = epoch_;
  snap.lsn = last_lsn_;
  snap.reclaim_gen = reclaim_gen_;
  snapshots_.Publish(snap);
}

template <int D>
Status ServingDb<D>::ApplyBatch(const std::vector<WriteOp>& ops,
                                std::vector<WriteResult>* results) {
  if (results != nullptr) results->clear();
  if (closed_) return Status::InvalidArgument("serving db is closed");
  if (dead_) {
    return Status::Internal(
        "serving db died after a durable failure; reopen to recover");
  }
  if (!wal_.has_value()) {
    return Status::Internal("serving db has no wal (open never finished)");
  }
  if (ops.empty()) return Status::OK();
  for (const WriteOp& op : ops) {
    if (op.is_insert && !op.mbr.IsValid()) {
      return Status::InvalidArgument("insert with an empty MBR");
    }
  }

  // 1. Log every op, then make the whole batch durable with ONE write and
  //    ONE fsync (group commit). Nothing is acknowledged unless this
  //    lands; a torn tail is discarded by replay's CRC check.
  const uint64_t first_lsn = last_lsn_ + 1;
  for (size_t i = 0; i < ops.size(); ++i) {
    WalRecord rec;
    rec.type = ops[i].is_insert ? WalRecordType::kInsert
                                : WalRecordType::kDelete;
    rec.dim = D;
    rec.lsn = first_lsn + i;
    rec.object_id = ops[i].id;
    rec.epoch = epoch_ + 1;
    for (int d = 0; d < D; ++d) {
      rec.lo[d] = ops[i].mbr.lo[d];
      rec.hi[d] = ops[i].mbr.hi[d];
    }
    if (Status st = wal_->Append(rec); !st.ok()) return Die(std::move(st));
  }
  if (Status st = wal_->Commit(); !st.ok()) return Die(std::move(st));

  // 2. Apply against the writer's tree under COW: no page a published
  //    snapshot can reach is edited in place. A failure here is fatal but
  //    loses nothing — the ops are in the log and replay on reopen.
  std::vector<WriteResult> local(ops.size());
  for (size_t i = 0; i < ops.size(); ++i) {
    local[i].lsn = first_lsn + i;
    if (ops[i].is_insert) {
      if (Status st = db_->tree().Insert(ops[i].mbr, ops[i].id); !st.ok()) {
        return Die(std::move(st));
      }
      local[i].applied = true;
    } else {
      Result<bool> removed = db_->tree().Delete(ops[i].mbr, ops[i].id);
      if (!removed.ok()) return Die(removed.status());
      local[i].applied = *removed;
    }
  }

  // 3. Push the new pages to the file so reader pools (which read the same
  //    file through their own pread fds) can see them. No fsync here —
  //    durability came from the WAL; this write is for visibility, and the
  //    kernel page cache makes it coherent with concurrent preads.
  if (Status st = db_->pool().FlushAll(); !st.ok()) return Die(std::move(st));

  // 4. Publish: the batch becomes the current snapshot, the pages it
  //    allocated become reachable (fresh set resets), and the caller is
  //    acknowledged.
  last_lsn_ = first_lsn + ops.size() - 1;
  epoch_ += 1;
  PublishCurrent();
  version_table_.BeginEpoch(epoch_);
  retired_pages_.Store(version_table_.retired_count());
  if (results != nullptr) *results = std::move(local);

  // 5. Housekeeping after the ack: a full segment triggers a checkpoint.
  //    Its failure cannot retract the acknowledgment (the batch is already
  //    durable); it marks the db dead and the *next* write reports it.
  if (wal_->ShouldRotate()) (void)Checkpoint();
  return Status::OK();
}

template <int D>
Status ServingDb<D>::Checkpoint() {
  if (closed_) return Status::InvalidArgument("serving db is closed");
  if (dead_) {
    return Status::Internal(
        "serving db died after a durable failure; reopen to recover");
  }
  if (!wal_.has_value()) {
    return Status::Internal("serving db has no wal (open never finished)");
  }

  // (a) Every page the tree references must be durable before the
  //     superblock may point at it.
  if (Status st = db_->pool().FlushAll(); !st.ok()) return Die(std::move(st));
  {
    const auto sync_start = std::chrono::steady_clock::now();
    if (Status st = db_->disk().Sync(); !st.ok()) return Die(std::move(st));
    checkpoint_sync_ns_.Record(static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - sync_start)
            .count()));
  }

  // (b) Start a fresh segment; a marker record ties it to this checkpoint
  //     (replay skips it — state comes from the superblock).
  Result<uint64_t> rotated = wal_->Rotate();
  if (!rotated.ok()) return Die(rotated.status());
  const uint64_t new_seq = *rotated;
  WalRecord marker;
  marker.type = WalRecordType::kCheckpoint;
  marker.dim = 0;
  marker.lsn = last_lsn_;
  marker.epoch = epoch_;
  if (Status st = wal_->Append(marker); !st.ok()) return Die(std::move(st));
  if (Status st = wal_->Commit(); !st.ok()) return Die(std::move(st));

  // (c) The atomic commit point: one sector-sized superblock write flips
  //     the durable state to (root, epoch, lsn, wal_seq) at once. Crash
  //     before it → recover from the old superblock + old segments (still
  //     present); crash after → the new state is complete.
  db_->StampDurability(epoch_, last_lsn_, new_seq);
  if (Status st = db_->Flush(); !st.ok()) return Die(std::move(st));

  // (d) Old segments can no longer be named by any superblock.
  wal_->DeleteSegmentsBelow(new_seq);

  // (e) Reclaim retired pages: the durable root no longer references them
  //     (it was just rewritten), so only a pinned snapshot can — the
  //     horizon excludes those. Readers notice recycled ids through
  //     reclaim_gen and drop their cached images.
  Status free_status = Status::OK();
  const uint64_t freed = version_table_.ReclaimUpTo(
      snapshots_.MinPinnedEpoch(), [&](PageId id) {
        if (!free_status.ok()) return;
        Status st = db_->pool().FreePage(id);
        if (!st.ok()) free_status = std::move(st);
      });
  if (!free_status.ok()) return Die(std::move(free_status));
  reclaimed_pages_total_ += freed;
  retired_pages_.Store(version_table_.retired_count());
  if (freed > 0) {
    ++reclaim_gen_;
    PublishCurrent();
  }
  ++checkpoints_;
  return Status::OK();
}

template <int D>
Status ServingDb<D>::Close() {
  if (closed_) return Status::OK();
  if (dead_) {
    closed_ = true;
    db_->Abandon();
    return Status::Internal(
        "serving db died after a durable failure; in-memory state "
        "discarded (the WAL preserves every acknowledged write)");
  }
  const Status checkpointed = Checkpoint();
  closed_ = true;
  if (!checkpointed.ok()) {
    db_->Abandon();
    return checkpointed;
  }
  return db_->Close();
}

template <int D>
void ServingDb<D>::Abandon() {
  closed_ = true;
  dead_ = true;
  if (db_ != nullptr) db_->Abandon();
}

template <int D>
ServingDb<D>::~ServingDb() {
  if (db_ == nullptr || closed_) return;
  if (dead_) {
    db_->Abandon();
    return;
  }
  const Status st = Close();
  if (!st.ok()) {
    std::fprintf(stderr, "ServingDb: close in destructor failed: %s\n",
                 st.ToString().c_str());
  }
}

template <int D>
Result<std::unique_ptr<ServingDb<D>>> SpatialDb<D>::OpenForServing(
    const std::string& path, const ServingOptions& options) {
  return ServingDb<D>::Open(path, options);
}

template class ServingDb<2>;
template class ServingDb<3>;

template Result<std::unique_ptr<ServingDb<2>>> SpatialDb<2>::OpenForServing(
    const std::string&, const ServingOptions&);
template Result<std::unique_ptr<ServingDb<3>>> SpatialDb<3>::OpenForServing(
    const std::string&, const ServingOptions&);

}  // namespace spatial
