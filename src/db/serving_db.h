#ifndef SPATIAL_DB_SERVING_DB_H_
#define SPATIAL_DB_SERVING_DB_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "db/spatial_db.h"
#include "obs/metrics.h"
#include "obs/stat_counter.h"
#include "geom/rect.h"
#include "snapshot/epoch.h"
#include "snapshot/snapshot.h"
#include "snapshot/version_table.h"
#include "storage/fault_injector.h"
#include "wal/wal_writer.h"

namespace spatial {

struct ServingOptions {
  uint32_t page_size = 1024;
  uint32_t buffer_pages = 256;
  uint64_t wal_segment_bytes = 256 * 1024;
  uint32_t max_reader_slots = 64;
  RTreeOptions tree;
  bool create_if_missing = true;
  // When set, every durable operation (page writes, WAL writes, fsyncs)
  // consults the injector — the crash-matrix test's hook. Must outlive the
  // ServingDb. Production use leaves this null.
  FaultInjector* injector = nullptr;
};

// The durability subsystem's front door: a SpatialDb opened for serving —
// WAL-logged single-writer mutations with group commit, snapshot-isolated
// multi-reader queries over copy-on-write tree versions, periodic
// checkpoints that fold the log into the base file, and crash recovery
// that replays the WAL tail on reopen. See docs/DURABILITY.md for the
// protocol and its crash-safety argument.
//
// Threading contract:
//   * ApplyBatch / Checkpoint / Close — exactly one writer thread.
//   * RegisterReader / PinSnapshot / UnpinSnapshot / ReleaseReader and
//     Disk::ReadPageConcurrent on disk() — any number of reader threads.
//     Each reader pins a snapshot around each query, reads pages through
//     its own BufferPool, and rebases its private RTree onto the pinned
//     (root, size, level) triple. When the pinned snapshot's reclaim_gen
//     differs from the last one the reader saw, the reader must
//     InvalidateAll() its pool first: a checkpoint has recycled retired
//     page ids whose stale images may still be cached.
//
// The ack contract: when ApplyBatch returns OK, every operation in the
// batch is on durable storage (WAL committed with fsync) and will survive
// any crash. When it fails, nothing in the batch was acknowledged and the
// ServingDb is dead — every later write fails — but an unacknowledged
// durable prefix may still be recovered on reopen (acked ⊆ recovered ⊆
// submitted).
template <int D>
class ServingDb {
 public:
  struct WriteOp {
    bool is_insert = true;
    Rect<D> mbr = Rect<D>::Empty();
    uint64_t id = 0;

    static WriteOp Insert(const Rect<D>& mbr, uint64_t id) {
      return WriteOp{true, mbr, id};
    }
    static WriteOp Delete(const Rect<D>& mbr, uint64_t id) {
      return WriteOp{false, mbr, id};
    }
  };

  struct WriteResult {
    uint64_t lsn = 0;
    // Inserts always apply; a delete applied iff (mbr, id) matched.
    bool applied = false;
  };

  // What reopen found. `recovered_lsn` is the highest LSN in the durable
  // state (checkpoint + replayed WAL tail); every acknowledged write has
  // lsn <= recovered_lsn.
  struct RecoveryInfo {
    uint64_t recovered_lsn = 0;
    uint64_t replayed_records = 0;
    bool tail_torn = false;
    uint64_t checkpoint_lsn = 0;
    bool created = false;  // no database existed; a fresh one was created
  };

  // Opens (or, with create_if_missing, creates) `path` for serving:
  // replays the WAL tail past the superblock's checkpoint, repairs a torn
  // log tail, then checkpoints so the recovered state is durably folded
  // into the base file before the first query.
  static Result<std::unique_ptr<ServingDb>> Open(const std::string& path,
                                                 const ServingOptions& options);

  ServingDb(const ServingDb&) = delete;
  ServingDb& operator=(const ServingDb&) = delete;
  ~ServingDb();

  // Writer side --------------------------------------------------------------

  // Durably logs, applies, and publishes a batch of mutations as one
  // commit (one WAL write + one fsync for the whole batch). On OK,
  // `results` (when non-null) holds one entry per op, in order. May
  // trigger a checkpoint when the WAL segment is full.
  Status ApplyBatch(const std::vector<WriteOp>& ops,
                    std::vector<WriteResult>* results);

  // Folds the log into the base file: flushes tree pages, rotates to a
  // fresh WAL segment, publishes the superblock (the atomic commit
  // point), deletes obsolete segments, and reclaims retired pages no
  // pinned snapshot can reach.
  Status Checkpoint();

  // Checkpoints and retires the database. After OK the destructor is a
  // no-op. On a dead database, discards in-memory state and reports why.
  Status Close();

  // Simulated crash: drops everything not yet durable, no flush, no
  // checkpoint. The crash tests' way to "kill" the process.
  void Abandon();

  // Reader side --------------------------------------------------------------

  Result<uint32_t> RegisterReader() { return snapshots_.RegisterReader(); }
  void ReleaseReader(uint32_t slot) { snapshots_.ReleaseReader(slot); }
  TreeSnapshot PinSnapshot(uint32_t slot) { return snapshots_.Pin(slot); }
  void UnpinSnapshot(uint32_t slot) { snapshots_.Unpin(slot); }
  TreeSnapshot CurrentSnapshot() const { return snapshots_.Current(); }

  // Introspection ------------------------------------------------------------

  const RecoveryInfo& recovery_info() const { return recovery_info_; }
  // Counters are StatCounter cells: written only by the writer thread,
  // safe to read live from any thread (metrics scrapers included).
  uint64_t last_lsn() const { return last_lsn_; }
  uint64_t epoch() const { return epoch_; }
  uint64_t reclaim_gen() const { return reclaim_gen_; }
  uint64_t checkpoints() const { return checkpoints_; }
  bool dead() const { return dead_; }
  const std::string& path() const { return path_; }
  const ServingOptions& options() const { return options_; }

  // Observability (docs/OBSERVABILITY.md). Live instruments, safe to read
  // from any thread while the writer runs; the query service's metrics
  // registry scrapes them.
  const obs::WalMetrics& wal_metrics() const { return wal_metrics_; }
  const obs::PowerHistogram& checkpoint_sync_histogram() const {
    return checkpoint_sync_ns_;
  }
  // COW bookkeeping depth: retired page versions currently held back by
  // the reclamation horizon, and the lifetime total reclaimed.
  uint64_t retired_pages() const { return retired_pages_; }
  uint64_t reclaimed_pages_total() const { return reclaimed_pages_total_; }

  // The shared storage readers open ReadOnlyDiskView over. With fault
  // injection this is the FaultyDiskManager wrapper (reads pass through).
  Disk& disk() { return db_->disk(); }
  const Disk& disk() const { return db_->disk(); }

  // The writer's view of the database. Reader threads must not touch
  // these; they get their own pools and trees via disk() + snapshots.
  SpatialDb<D>& db() { return *db_; }
  RTree<D>& writer_tree() { return db_->tree(); }
  const RTree<D>& writer_tree() const { return db_->tree(); }

 private:
  ServingDb(std::string path, const ServingOptions& options)
      : path_(std::move(path)),
        options_(options),
        snapshots_(options.max_reader_slots) {}

  Status Replay(uint64_t start_seq);
  void PublishCurrent();
  Status Die(Status why) {
    dead_ = true;
    return why;
  }

  std::string path_;
  ServingOptions options_;
  std::unique_ptr<SpatialDb<D>> db_;
  std::optional<WalWriter> wal_;
  PageVersionTable version_table_;
  SnapshotManager snapshots_;
  RecoveryInfo recovery_info_;
  obs::StatCounter epoch_;
  obs::StatCounter last_lsn_;
  obs::StatCounter reclaim_gen_;
  obs::StatCounter checkpoints_;
  obs::WalMetrics wal_metrics_;
  obs::PowerHistogram checkpoint_sync_ns_;
  obs::StatCounter retired_pages_;
  obs::StatCounter reclaimed_pages_total_;
  bool dead_ = false;
  bool closed_ = false;
};

extern template class ServingDb<2>;
extern template class ServingDb<3>;

}  // namespace spatial

#endif  // SPATIAL_DB_SERVING_DB_H_
