#include "db/meta_page.h"

#include <algorithm>
#include <cstring>

#include "common/crc32.h"
#include "common/macros.h"

namespace spatial {
namespace {

constexpr uint32_t kMetaMagic = 0x53504442;  // "SPDB"
constexpr uint32_t kMetaVersion = 2;

// On-page layout; trivially copyable and memcpy'd like node pages. The
// free list (free_count u32 page ids) follows immediately after. The CRC
// covers the layout (with the crc field zeroed) plus the free list, and
// layout + full free list stay below one 512-byte sector — see
// kMaxPersistedFreeIds.
struct MetaLayout {
  uint32_t magic;
  uint32_t version;
  uint32_t page_size;
  uint16_t dimension;
  uint16_t root_level;
  uint32_t root_page;
  uint64_t size;
  uint8_t split;
  uint8_t rstar_reinsert;
  uint8_t padding[6];
  double min_fill;
  double reinsert_fraction;
  uint32_t num_pages;
  uint32_t free_count;
  uint64_t epoch;
  uint64_t checkpoint_lsn;
  uint64_t wal_seq;
  uint32_t crc;
  uint32_t padding2;
};
static_assert(std::is_trivially_copyable_v<MetaLayout>);
static_assert(sizeof(MetaLayout) + 4 * kMaxPersistedFreeIds <= 512,
              "superblock must fit one atomically-written sector");

}  // namespace

void EncodeMetaPage(const MetaRecord& meta, char* page, uint32_t page_size) {
  SPATIAL_CHECK(page_size >= sizeof(MetaLayout));
  // Tiny pages shrink the persistable free list further; overflow is
  // leaked, not lost data.
  const uint32_t cap = std::min<uint32_t>(
      kMaxPersistedFreeIds,
      (page_size - static_cast<uint32_t>(sizeof(MetaLayout))) / 4);
  const uint32_t free_count =
      static_cast<uint32_t>(std::min<size_t>(meta.free_pages.size(), cap));
  MetaLayout layout{};
  layout.magic = kMetaMagic;
  layout.version = kMetaVersion;
  layout.page_size = meta.page_size;
  layout.dimension = meta.dimension;
  layout.root_level = meta.root_level;
  layout.root_page = meta.root_page;
  layout.size = meta.size;
  layout.split = static_cast<uint8_t>(meta.split);
  layout.rstar_reinsert = meta.rstar_reinsert ? 1 : 0;
  layout.min_fill = meta.min_fill;
  layout.reinsert_fraction = meta.reinsert_fraction;
  layout.num_pages = meta.num_pages;
  layout.free_count = free_count;
  layout.epoch = meta.epoch;
  layout.checkpoint_lsn = meta.checkpoint_lsn;
  layout.wal_seq = meta.wal_seq;
  layout.crc = 0;
  std::memset(page, 0, page_size);
  std::memcpy(page, &layout, sizeof(layout));
  if (free_count > 0) {
    std::memcpy(page + sizeof(layout), meta.free_pages.data(),
                4 * free_count);
  }
  const uint32_t crc = Crc32(page, sizeof(layout) + 4 * free_count);
  std::memcpy(page + offsetof(MetaLayout, crc), &crc, 4);
}

Status DecodeMetaPage(const char* page, uint32_t page_size,
                      MetaRecord* meta) {
  SPATIAL_CHECK(meta != nullptr);
  if (page_size < sizeof(MetaLayout)) {
    return Status::InvalidArgument("page too small for a meta page");
  }
  MetaLayout layout;
  std::memcpy(&layout, page, sizeof(layout));
  if (layout.magic != kMetaMagic) {
    return Status::Corruption("meta page has bad magic");
  }
  if (layout.version != kMetaVersion) {
    return Status::Corruption("unsupported meta page version " +
                              std::to_string(layout.version));
  }
  if (layout.free_count > kMaxPersistedFreeIds ||
      sizeof(MetaLayout) + 4 * layout.free_count > page_size) {
    return Status::Corruption("meta page free list overlong");
  }
  // CRC check with the crc field zeroed, exactly as encoded.
  const uint32_t stored_crc = layout.crc;
  std::string covered(page, sizeof(layout) + 4 * layout.free_count);
  std::memset(covered.data() + offsetof(MetaLayout, crc), 0, 4);
  if (Crc32(covered.data(), covered.size()) != stored_crc) {
    return Status::Corruption("meta page checksum mismatch");
  }
  if (layout.page_size != page_size) {
    return Status::InvalidArgument(
        "database was created with page size " +
        std::to_string(layout.page_size) + ", opened with " +
        std::to_string(page_size));
  }
  if (layout.split > static_cast<uint8_t>(SplitAlgorithm::kRStar)) {
    return Status::Corruption("meta page has invalid split algorithm");
  }
  meta->page_size = layout.page_size;
  meta->dimension = layout.dimension;
  meta->root_level = layout.root_level;
  meta->root_page = layout.root_page;
  meta->size = layout.size;
  meta->split = static_cast<SplitAlgorithm>(layout.split);
  meta->rstar_reinsert = layout.rstar_reinsert != 0;
  meta->min_fill = layout.min_fill;
  meta->reinsert_fraction = layout.reinsert_fraction;
  meta->num_pages = layout.num_pages;
  meta->epoch = layout.epoch;
  meta->checkpoint_lsn = layout.checkpoint_lsn;
  meta->wal_seq = layout.wal_seq;
  meta->free_pages.assign(layout.free_count, 0);
  if (layout.free_count > 0) {
    std::memcpy(meta->free_pages.data(), page + sizeof(layout),
                4 * layout.free_count);
  }
  return Status::OK();
}

}  // namespace spatial
