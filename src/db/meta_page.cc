#include "db/meta_page.h"

#include <cstring>

#include "common/macros.h"

namespace spatial {
namespace {

constexpr uint32_t kMetaMagic = 0x53504442;  // "SPDB"
constexpr uint32_t kMetaVersion = 1;

// On-page layout; trivially copyable and memcpy'd like node pages.
struct MetaLayout {
  uint32_t magic;
  uint32_t version;
  uint32_t page_size;
  uint16_t dimension;
  uint16_t root_level;
  uint32_t root_page;
  uint64_t size;
  uint8_t split;
  uint8_t rstar_reinsert;
  uint8_t padding[6];
  double min_fill;
  double reinsert_fraction;
};
static_assert(std::is_trivially_copyable_v<MetaLayout>);

}  // namespace

void EncodeMetaPage(const MetaRecord& meta, char* page, uint32_t page_size) {
  SPATIAL_CHECK(page_size >= sizeof(MetaLayout));
  MetaLayout layout{};
  layout.magic = kMetaMagic;
  layout.version = kMetaVersion;
  layout.page_size = meta.page_size;
  layout.dimension = meta.dimension;
  layout.root_level = meta.root_level;
  layout.root_page = meta.root_page;
  layout.size = meta.size;
  layout.split = static_cast<uint8_t>(meta.split);
  layout.rstar_reinsert = meta.rstar_reinsert ? 1 : 0;
  layout.min_fill = meta.min_fill;
  layout.reinsert_fraction = meta.reinsert_fraction;
  std::memset(page, 0, page_size);
  std::memcpy(page, &layout, sizeof(layout));
}

Status DecodeMetaPage(const char* page, uint32_t page_size,
                      MetaRecord* meta) {
  SPATIAL_CHECK(meta != nullptr);
  if (page_size < sizeof(MetaLayout)) {
    return Status::InvalidArgument("page too small for a meta page");
  }
  MetaLayout layout;
  std::memcpy(&layout, page, sizeof(layout));
  if (layout.magic != kMetaMagic) {
    return Status::Corruption("meta page has bad magic");
  }
  if (layout.version != kMetaVersion) {
    return Status::Corruption("unsupported meta page version " +
                              std::to_string(layout.version));
  }
  if (layout.page_size != page_size) {
    return Status::InvalidArgument(
        "database was created with page size " +
        std::to_string(layout.page_size) + ", opened with " +
        std::to_string(page_size));
  }
  if (layout.split > static_cast<uint8_t>(SplitAlgorithm::kRStar)) {
    return Status::Corruption("meta page has invalid split algorithm");
  }
  meta->page_size = layout.page_size;
  meta->dimension = layout.dimension;
  meta->root_level = layout.root_level;
  meta->root_page = layout.root_page;
  meta->size = layout.size;
  meta->split = static_cast<SplitAlgorithm>(layout.split);
  meta->rstar_reinsert = layout.rstar_reinsert != 0;
  meta->min_fill = layout.min_fill;
  meta->reinsert_fraction = layout.reinsert_fraction;
  return Status::OK();
}

}  // namespace spatial
