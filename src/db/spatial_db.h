#ifndef SPATIAL_DB_SPATIAL_DB_H_
#define SPATIAL_DB_SPATIAL_DB_H_

#include <memory>
#include <optional>
#include <string>

#include "common/result.h"
#include "db/meta_page.h"
#include "rtree/bulk_load.h"
#include "rtree/rtree.h"
#include "storage/buffer_pool.h"
#include "storage/disk.h"

namespace spatial {

// The adoption-friendly front door: bundles storage (in-memory or
// file-backed), buffer pool, superblock, and the R-tree into one owned
// object with a create / reopen lifecycle.
//
//   auto db = SpatialDb<2>::CreateOnFile("points.sdb", {});
//   db->tree().Insert(Rect2::FromPoint({{1.0, 2.0}}), 7);
//   db->Flush();                      // persist superblock + dirty pages
//   ...
//   auto again = SpatialDb<2>::OpenFromFile("points.sdb", 256);
//   auto nn = KnnSearch<2>(again->tree(), {{1.0, 2.1}}, KnnOptions{}, nullptr);
//
// Page 0 of the underlying disk is the superblock (see db/meta_page.h);
// tree nodes occupy the remaining pages. Flush() must be called before the
// process exits for the index to be reopenable (the destructor makes a
// best-effort Flush as well).
//
// Not thread-safe.
template <int D>
class SpatialDb {
 public:
  struct Options {
    uint32_t page_size = 1024;
    uint32_t buffer_pages = 256;
    RTreeOptions tree;
  };

  // Fresh database on a simulated in-memory disk (tests, experiments).
  static Result<SpatialDb> CreateInMemory(const Options& options);

  // Fresh database on a file (truncates an existing one).
  static Result<SpatialDb> CreateOnFile(const std::string& path,
                                        const Options& options);

  // Reopens a database created by CreateOnFile. Page size and tree options
  // come from the superblock.
  static Result<SpatialDb> OpenFromFile(const std::string& path,
                                        uint32_t page_size,
                                        uint32_t buffer_pages);

  SpatialDb(SpatialDb&&) = default;
  SpatialDb& operator=(SpatialDb&&) = default;
  SpatialDb(const SpatialDb&) = delete;
  SpatialDb& operator=(const SpatialDb&) = delete;
  ~SpatialDb();

  // Replaces the (empty) tree with a packed one over `items`. Fails with
  // AlreadyExists if the database already holds data.
  Status BulkLoadData(std::vector<Entry<D>> items, BulkLoadMethod method);

  // Writes the superblock, flushes dirty pages, and syncs a file backend.
  Status Flush();

  RTree<D>& tree() { return *tree_; }
  const RTree<D>& tree() const { return *tree_; }
  BufferPool& pool() { return *pool_; }
  Disk& disk() { return *disk_; }
  bool file_backed() const { return file_backed_; }

 private:
  SpatialDb() = default;

  static Result<SpatialDb> InitCommon(std::unique_ptr<Disk> disk,
                                      bool file_backed,
                                      const Options& options);

  std::unique_ptr<Disk> disk_;
  std::unique_ptr<BufferPool> pool_;
  std::optional<RTree<D>> tree_;
  bool file_backed_ = false;
  PageId meta_page_ = kInvalidPageId;
};

extern template class SpatialDb<2>;
extern template class SpatialDb<3>;

}  // namespace spatial

#endif  // SPATIAL_DB_SPATIAL_DB_H_
