#ifndef SPATIAL_DB_SPATIAL_DB_H_
#define SPATIAL_DB_SPATIAL_DB_H_

#include <memory>
#include <optional>
#include <string>

#include "common/result.h"
#include "db/meta_page.h"
#include "rtree/bulk_load.h"
#include "rtree/rtree.h"
#include "storage/buffer_pool.h"
#include "storage/disk.h"

namespace spatial {

template <int D>
class ServingDb;
struct ServingOptions;

// The adoption-friendly front door: bundles storage (in-memory or
// file-backed), buffer pool, superblock, and the R-tree into one owned
// object with a create / reopen lifecycle.
//
//   auto db = SpatialDb<2>::CreateOnFile("points.sdb", {});
//   db->tree().Insert(Rect2::FromPoint({{1.0, 2.0}}), 7);
//   db->Flush();                      // persist superblock + dirty pages
//   ...
//   auto again = SpatialDb<2>::OpenFromFile("points.sdb", 256);
//   auto nn = KnnSearch<2>(again->tree(), {{1.0, 2.1}}, KnnOptions{}, nullptr);
//
// Page 0 of the underlying disk is the superblock (see db/meta_page.h);
// tree nodes occupy the remaining pages. Flush() must be called before the
// process exits for the index to be reopenable (the destructor makes a
// best-effort Flush as well).
//
// Not thread-safe. A database opened with OpenFromFileReadOnly is
// immutable, which makes its *disk* safe for concurrent readers via
// Disk::ReadPageConcurrent — the basis of the query service's one-pool-
// per-worker concurrency model (service/query_service.h).
template <int D>
class SpatialDb {
 public:
  struct Options {
    uint32_t page_size = 1024;
    uint32_t buffer_pages = 256;
    RTreeOptions tree;
  };

  // Fresh database on a simulated in-memory disk (tests, experiments).
  static Result<SpatialDb> CreateInMemory(const Options& options);

  // Fresh database on a file (truncates an existing one).
  static Result<SpatialDb> CreateOnFile(const std::string& path,
                                        const Options& options);

  // Reopens a database created by CreateOnFile. Page size and tree options
  // come from the superblock.
  static Result<SpatialDb> OpenFromFile(const std::string& path,
                                        uint32_t page_size,
                                        uint32_t buffer_pages);

  // Like OpenFromFile, but the underlying file is opened read-only:
  // mutations are rejected at the storage layer, Flush() fails, and the
  // destructor does not write. This is the mode the query service uses —
  // a read-only database is immutable, so many threads may read its disk
  // concurrently (each through its own BufferPool; see docs/SERVICE.md).
  static Result<SpatialDb> OpenFromFileReadOnly(const std::string& path,
                                                uint32_t page_size,
                                                uint32_t buffer_pages);

  // Reopens a database over a caller-supplied Disk (page 0 must hold a
  // valid superblock). This is how the durability subsystem interposes a
  // fault-injecting wrapper between the database and the real file.
  static Result<SpatialDb> OpenOnDisk(std::unique_ptr<Disk> disk,
                                      uint32_t page_size,
                                      uint32_t buffer_pages);

  // Opens `path` for durable serving: WAL-logged writes, snapshot-isolated
  // reads, crash recovery. Replays any WAL tail beyond the last checkpoint
  // before returning. Defined with ServingDb (db/serving_db.h).
  static Result<std::unique_ptr<ServingDb<D>>> OpenForServing(
      const std::string& path, const ServingOptions& options);

  SpatialDb(SpatialDb&&) = default;
  SpatialDb& operator=(SpatialDb&&) = default;
  SpatialDb(const SpatialDb&) = delete;
  SpatialDb& operator=(const SpatialDb&) = delete;
  ~SpatialDb();

  // Replaces the (empty) tree with a packed one over `items`. Fails with
  // AlreadyExists if the database already holds data.
  Status BulkLoadData(std::vector<Entry<D>> items, BulkLoadMethod method);

  // Writes the superblock, flushes dirty pages, and syncs a file backend.
  Status Flush();

  // Flushes (when writable) and retires the database: after an OK Close()
  // the destructor will not write again, and a failed flush is reported
  // here — with a Status the caller can act on — instead of being
  // swallowed at destruction time.
  Status Close();

  // Marks the database closed WITHOUT flushing: the destructor becomes a
  // no-op and unflushed state is deliberately dropped. This is the
  // simulated-crash hook of the durability tests; production code wants
  // Close().
  void Abandon() { closed_ = true; }

  // Durability state stamped into the superblock by the next Flush() and
  // read back on open. Maintained by the serving layer; plain SpatialDb
  // use leaves the defaults (epoch 0, lsn 0, wal seq 1).
  void StampDurability(uint64_t epoch, uint64_t checkpoint_lsn,
                       uint64_t wal_seq) {
    epoch_ = epoch;
    checkpoint_lsn_ = checkpoint_lsn;
    wal_seq_ = wal_seq;
  }
  uint64_t epoch() const { return epoch_; }
  uint64_t checkpoint_lsn() const { return checkpoint_lsn_; }
  uint64_t wal_seq() const { return wal_seq_; }

  RTree<D>& tree() { return *tree_; }
  const RTree<D>& tree() const { return *tree_; }
  BufferPool& pool() { return *pool_; }
  Disk& disk() { return *disk_; }
  const Disk& disk() const { return *disk_; }
  bool file_backed() const { return file_backed_; }
  bool read_only() const { return read_only_; }

 private:
  SpatialDb() = default;

  static Result<SpatialDb> InitCommon(std::unique_ptr<Disk> disk,
                                      bool file_backed,
                                      const Options& options);
  static Result<SpatialDb> OpenFromDisk(std::unique_ptr<Disk> disk,
                                        uint32_t page_size,
                                        uint32_t buffer_pages,
                                        bool read_only);

  std::unique_ptr<Disk> disk_;
  std::unique_ptr<BufferPool> pool_;
  std::optional<RTree<D>> tree_;
  bool file_backed_ = false;
  bool read_only_ = false;
  bool closed_ = false;
  PageId meta_page_ = kInvalidPageId;
  uint64_t epoch_ = 0;
  uint64_t checkpoint_lsn_ = 0;
  uint64_t wal_seq_ = 1;
};

extern template class SpatialDb<2>;
extern template class SpatialDb<3>;

}  // namespace spatial

#endif  // SPATIAL_DB_SPATIAL_DB_H_
