#ifndef SPATIAL_DB_META_PAGE_H_
#define SPATIAL_DB_META_PAGE_H_

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "rtree/options.h"
#include "storage/disk.h"

namespace spatial {

// Maximum number of free-list page ids persisted in the superblock. The
// checkpoint protocol relies on the superblock write being atomic, which
// holds on common hardware for a single 512-byte sector — so the fixed
// layout plus the free list must stay under 512 bytes. Free pages beyond
// the cap are merely leaked across a crash (re-captured by later
// checkpoints while the process lives), never corrupted.
inline constexpr uint32_t kMaxPersistedFreeIds = 100;

// Superblock stored in page 0 of a SpatialDb. Records everything needed to
// reopen the index without rescanning: root page, entry count, dimension,
// the tree options the index was built with — and, since version 2, the
// durability state a ServingDb checkpoint publishes: the page span the
// tree may reference, the publishing epoch, the LSN covered by the
// checkpoint, the WAL segment replay starts from, and the allocator's free
// list. A CRC over the whole encoded region rejects partially written or
// bit-rotted superblocks at open.
struct MetaRecord {
  uint32_t page_size = 0;
  uint16_t dimension = 0;
  PageId root_page = kInvalidPageId;
  uint64_t size = 0;
  uint16_t root_level = 0;
  SplitAlgorithm split = SplitAlgorithm::kQuadratic;
  double min_fill = 0.4;
  bool rstar_reinsert = true;
  double reinsert_fraction = 0.3;
  // Durability state (v2). `num_pages` is the file's page span at the
  // moment this superblock was written; every page id the tree references
  // is below it, which is what lets open() reject truncated files.
  uint32_t num_pages = 0;
  uint64_t epoch = 0;
  uint64_t checkpoint_lsn = 0;
  uint64_t wal_seq = 1;
  std::vector<PageId> free_pages;  // at most kMaxPersistedFreeIds persist
};

// Serializes `meta` into a page buffer of `page_size` bytes. At most
// kMaxPersistedFreeIds entries of `free_pages` are stored.
void EncodeMetaPage(const MetaRecord& meta, char* page, uint32_t page_size);

// Parses and validates a meta page; Corruption on bad magic/version/CRC,
// InvalidArgument when the stored geometry disagrees with `page_size`.
Status DecodeMetaPage(const char* page, uint32_t page_size,
                      MetaRecord* meta);

}  // namespace spatial

#endif  // SPATIAL_DB_META_PAGE_H_
