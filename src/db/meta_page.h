#ifndef SPATIAL_DB_META_PAGE_H_
#define SPATIAL_DB_META_PAGE_H_

#include <cstdint>

#include "common/status.h"
#include "rtree/options.h"
#include "storage/disk.h"

namespace spatial {

// Superblock stored in page 0 of a SpatialDb. Records everything needed to
// reopen the index without rescanning: root page, entry count, dimension,
// and the tree options the index was built with.
struct MetaRecord {
  uint32_t page_size = 0;
  uint16_t dimension = 0;
  PageId root_page = kInvalidPageId;
  uint64_t size = 0;
  uint16_t root_level = 0;
  SplitAlgorithm split = SplitAlgorithm::kQuadratic;
  double min_fill = 0.4;
  bool rstar_reinsert = true;
  double reinsert_fraction = 0.3;
};

// Serializes `meta` into a page buffer of `page_size` bytes.
void EncodeMetaPage(const MetaRecord& meta, char* page, uint32_t page_size);

// Parses and validates a meta page; Corruption on bad magic/version,
// InvalidArgument when the stored geometry disagrees with `page_size`.
Status DecodeMetaPage(const char* page, uint32_t page_size,
                      MetaRecord* meta);

}  // namespace spatial

#endif  // SPATIAL_DB_META_PAGE_H_
