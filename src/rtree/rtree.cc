#include "rtree/rtree.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <limits>

#include "common/macros.h"
#include "geom/point.h"
#include "rtree/node_codec.h"
#include "rtree/split.h"

namespace spatial {

namespace {

template <int D>
Rect<D> UnionOf(const std::vector<Entry<D>>& entries) {
  Rect<D> mbr = Rect<D>::Empty();
  for (const Entry<D>& e : entries) mbr.ExpandToInclude(e.mbr);
  return mbr;
}

}  // namespace

template <int D>
Result<RTree<D>> RTree<D>::Create(BufferPool* pool,
                                  const RTreeOptions& options) {
  if (pool == nullptr) {
    return Status::InvalidArgument("RTree::Create: pool is null");
  }
  SPATIAL_RETURN_IF_ERROR(options.Validate());
  if (NodeView<D>::MaxEntries(pool->page_size()) < 4) {
    return Status::InvalidArgument(
        "page size too small: a node must hold at least 4 entries");
  }
  SPATIAL_ASSIGN_OR_RETURN(PageHandle root, pool->NewPage());
  NodeView<D> view(root.data(), pool->page_size());
  view.InitEmpty(/*level=*/0);
  root.MarkDirty();
  return RTree<D>(pool, options, root.id(), /*size=*/0, /*root_level=*/0);
}

template <int D>
Result<RTree<D>> RTree<D>::Open(BufferPool* pool, const RTreeOptions& options,
                                PageId root_page, uint64_t known_size) {
  if (pool == nullptr) {
    return Status::InvalidArgument("RTree::Open: pool is null");
  }
  SPATIAL_RETURN_IF_ERROR(options.Validate());
  SPATIAL_ASSIGN_OR_RETURN(PageHandle root, pool->Fetch(root_page));
  SPATIAL_RETURN_IF_ERROR(CheckNodePage<D>(root.data(), pool->page_size()));
  NodeView<D> view(root.data(), pool->page_size());
  const uint16_t root_level = view.level();
  root.Release();
  return RTree<D>(pool, options, root_page, known_size, root_level);
}

template <int D>
Result<RTree<D>> RTree<D>::Open(BufferPool* pool, const RTreeOptions& options,
                                PageId root_page) {
  SPATIAL_ASSIGN_OR_RETURN(RTree<D> tree,
                           Open(pool, options, root_page, /*known_size=*/0));
  // Recompute the entry count with a full-window search.
  std::vector<Entry<D>> all;
  Rect<D> everything;
  for (int i = 0; i < D; ++i) {
    everything.lo[i] = -std::numeric_limits<double>::infinity();
    everything.hi[i] = std::numeric_limits<double>::infinity();
  }
  SPATIAL_RETURN_IF_ERROR(tree.Search(everything, &all));
  tree.size_ = all.size();
  return tree;
}

template <int D>
uint32_t RTree<D>::max_entries() const {
  return NodeView<D>::MaxEntries(pool_->page_size());
}

template <int D>
uint32_t RTree<D>::min_entries() const {
  const uint32_t max = max_entries();
  uint32_t m = static_cast<uint32_t>(
      std::floor(static_cast<double>(max) * options_.min_fill));
  m = std::max<uint32_t>(m, 1);
  m = std::min<uint32_t>(m, max / 2);
  return m;
}

template <int D>
Result<PageHandle> RTree<D>::FetchMutable(PageId node_id,
                                          PageId* current_id) {
  SPATIAL_ASSIGN_OR_RETURN(PageHandle handle, pool_->Fetch(node_id));
  if (cow_ == nullptr || !cow_->NeedsShadow(node_id)) {
    *current_id = node_id;
    return handle;
  }
  SPATIAL_ASSIGN_OR_RETURN(PageHandle shadow, pool_->NewPage());
  std::memcpy(shadow.data(), handle.data(), pool_->page_size());
  shadow.MarkDirty();
  handle.Release();
  cow_->OnPageAllocated(shadow.id());
  cow_->OnPageRetired(node_id);
  *current_id = shadow.id();
  return shadow;
}

template <int D>
Result<PageHandle> RTree<D>::NewTrackedPage() {
  SPATIAL_ASSIGN_OR_RETURN(PageHandle handle, pool_->NewPage());
  if (cow_ != nullptr) cow_->OnPageAllocated(handle.id());
  return handle;
}

template <int D>
Status RTree<D>::RetireOrFree(PageId id) {
  // Under COW even a fresh page is retired rather than freed: deferring to
  // checkpoint costs one page of reuse latency and keeps a single
  // invariant — no page leaves the allocator while any snapshot or the
  // durable superblock might reference it.
  if (cow_ != nullptr) {
    cow_->OnPageRetired(id);
    return Status::OK();
  }
  return pool_->FreePage(id);
}

template <int D>
Status RTree<D>::Insert(const Rect<D>& mbr, uint64_t id) {
  if (!mbr.IsValid()) {
    return Status::InvalidArgument("Insert: invalid rectangle");
  }
  uint32_t reinsert_mask = 0;
  SPATIAL_RETURN_IF_ERROR(
      InsertAtLevel(Entry<D>{mbr, id}, /*target_level=*/0, &reinsert_mask));
  ++size_;
  return Status::OK();
}

template <int D>
Status RTree<D>::InsertAtLevel(const Entry<D>& entry, uint16_t target_level,
                               uint32_t* reinsert_mask) {
  SPATIAL_ASSIGN_OR_RETURN(
      InsertOutcome outcome,
      InsertRecursive(root_page_, entry, target_level, reinsert_mask));
  root_page_ = outcome.node_id;  // the root may have been shadowed
  if (outcome.split_entry.has_value()) {
    // Root split: grow the tree by one level.
    SPATIAL_ASSIGN_OR_RETURN(PageHandle new_root, NewTrackedPage());
    NodeView<D> view(new_root.data(), pool_->page_size());
    view.InitEmpty(static_cast<uint16_t>(root_level_ + 1));
    view.Append(Entry<D>{outcome.updated_mbr, root_page_});
    view.Append(*outcome.split_entry);
    new_root.MarkDirty();
    root_page_ = new_root.id();
    ++root_level_;
  }
  // Forced-reinsertion backlog (R* only). The mask guarantees each level
  // triggers at most one forced reinsertion per top-level insert, so this
  // terminates.
  for (const PendingEntry& pending : outcome.reinserts) {
    SPATIAL_RETURN_IF_ERROR(
        InsertAtLevel(pending.entry, pending.level, reinsert_mask));
  }
  return Status::OK();
}

template <int D>
auto RTree<D>::InsertRecursive(PageId node_id, const Entry<D>& entry,
                               uint16_t target_level, uint32_t* reinsert_mask)
    -> Result<InsertOutcome> {
  // An insert dirties every node on its path, so shadow (if the COW policy
  // requires it) before reading. is_root is decided by the incoming id —
  // root_page_ still holds the pre-shadow root id at this point.
  const bool is_root = node_id == root_page_;
  PageId current_id = node_id;
  SPATIAL_ASSIGN_OR_RETURN(PageHandle handle,
                           FetchMutable(node_id, &current_id));
  NodeView<D> view(handle.data(), pool_->page_size());
  if (!view.has_valid_magic()) {
    return Status::Corruption("insert: node page has bad magic");
  }

  if (view.level() == target_level) {
    if (!view.full()) {
      view.Append(entry);
      handle.MarkDirty();
      return InsertOutcome{view.ComputeMbr(), std::nullopt, {}, current_id};
    }
    return HandleOverflow(&view, &handle, current_id, is_root, entry,
                          reinsert_mask);
  }

  SPATIAL_DCHECK(view.level() > target_level);
  const size_t child_idx = ChooseSubtree(view, entry.mbr);
  const Entry<D> child_entry = view.entry(static_cast<uint32_t>(child_idx));
  const PageId child_id = static_cast<PageId>(child_entry.id);

  SPATIAL_ASSIGN_OR_RETURN(
      InsertOutcome child_outcome,
      InsertRecursive(child_id, entry, target_level, reinsert_mask));

  view.set_entry(
      static_cast<uint32_t>(child_idx),
      Entry<D>{child_outcome.updated_mbr, child_outcome.node_id});
  handle.MarkDirty();

  if (child_outcome.split_entry.has_value()) {
    SPATIAL_DCHECK(child_outcome.reinserts.empty());
    if (!view.full()) {
      view.Append(*child_outcome.split_entry);
      return InsertOutcome{view.ComputeMbr(), std::nullopt, {}, current_id};
    }
    return HandleOverflow(&view, &handle, current_id, is_root,
                          *child_outcome.split_entry, reinsert_mask);
  }
  return InsertOutcome{view.ComputeMbr(), std::nullopt,
                       std::move(child_outcome.reinserts), current_id};
}

template <int D>
auto RTree<D>::HandleOverflow(NodeView<D>* view, PageHandle* handle,
                              PageId node_id, bool is_root,
                              const Entry<D>& extra,
                              uint32_t* reinsert_mask) -> Result<InsertOutcome> {
  const uint16_t level = view->level();
  std::vector<Entry<D>> entries = view->GetEntries();
  entries.push_back(extra);

  const bool may_reinsert =
      options_.split == SplitAlgorithm::kRStar && options_.rstar_reinsert &&
      !is_root && (*reinsert_mask & (1u << level)) == 0;

  if (may_reinsert) {
    *reinsert_mask |= (1u << level);
    size_t p = static_cast<size_t>(std::llround(
        options_.reinsert_fraction * static_cast<double>(entries.size())));
    p = std::clamp<size_t>(p, 1, entries.size() - min_entries());

    // Remove the p entries whose centers are farthest from the node center
    // ("far reinsert"); reinsert them closest-first.
    const Point<D> center = UnionOf(entries).Center();
    std::sort(entries.begin(), entries.end(),
              [&center](const Entry<D>& a, const Entry<D>& b) {
                return SquaredDistance(a.mbr.Center(), center) <
                       SquaredDistance(b.mbr.Center(), center);
              });
    std::vector<Entry<D>> keep(entries.begin(),
                               entries.end() - static_cast<ptrdiff_t>(p));
    InsertOutcome outcome;
    outcome.reinserts.reserve(p);
    for (size_t i = entries.size() - p; i < entries.size(); ++i) {
      outcome.reinserts.push_back(PendingEntry{entries[i], level});
    }
    view->SetEntries(keep);
    handle->MarkDirty();
    outcome.updated_mbr = view->ComputeMbr();
    outcome.node_id = node_id;
    return outcome;
  }

  SplitResult<D> split =
      SplitEntries<D>(options_.split, min_entries(), std::move(entries));
  view->SetEntries(split.group_a);
  handle->MarkDirty();
  const Rect<D> mbr_a = UnionOf(split.group_a);
  const Rect<D> mbr_b = UnionOf(split.group_b);

  SPATIAL_ASSIGN_OR_RETURN(PageHandle sibling, NewTrackedPage());
  NodeView<D> sibling_view(sibling.data(), pool_->page_size());
  sibling_view.InitEmpty(level);
  sibling_view.SetEntries(split.group_b);
  sibling.MarkDirty();

  return InsertOutcome{mbr_a, Entry<D>{mbr_b, sibling.id()}, {}, node_id};
}

template <int D>
size_t RTree<D>::ChooseSubtree(const NodeView<D>& node,
                               const Rect<D>& mbr) const {
  const uint32_t n = node.count();
  SPATIAL_DCHECK(n > 0);

  // R* refinement: when the children are leaves, minimize the increase of
  // overlap with sibling entries rather than pure area enlargement.
  if (options_.split == SplitAlgorithm::kRStar && node.level() == 1) {
    size_t best = 0;
    double best_overlap_increase = std::numeric_limits<double>::infinity();
    double best_enlargement = std::numeric_limits<double>::infinity();
    double best_area = std::numeric_limits<double>::infinity();
    for (uint32_t i = 0; i < n; ++i) {
      const Rect<D> current = node.entry(i).mbr;
      const Rect<D> enlarged = Rect<D>::Union(current, mbr);
      double overlap_increase = 0.0;
      for (uint32_t j = 0; j < n; ++j) {
        if (j == i) continue;
        const Rect<D> other = node.entry(j).mbr;
        overlap_increase +=
            enlarged.OverlapArea(other) - current.OverlapArea(other);
      }
      const double enlargement = current.Enlargement(mbr);
      const double area = current.Area();
      if (overlap_increase < best_overlap_increase ||
          (overlap_increase == best_overlap_increase &&
           (enlargement < best_enlargement ||
            (enlargement == best_enlargement && area < best_area)))) {
        best_overlap_increase = overlap_increase;
        best_enlargement = enlargement;
        best_area = area;
        best = i;
      }
    }
    return best;
  }

  // Guttman: least enlargement, ties by smallest area.
  size_t best = 0;
  double best_enlargement = std::numeric_limits<double>::infinity();
  double best_area = std::numeric_limits<double>::infinity();
  for (uint32_t i = 0; i < n; ++i) {
    const Rect<D> current = node.entry(i).mbr;
    const double enlargement = current.Enlargement(mbr);
    const double area = current.Area();
    if (enlargement < best_enlargement ||
        (enlargement == best_enlargement && area < best_area)) {
      best_enlargement = enlargement;
      best_area = area;
      best = i;
    }
  }
  return best;
}

template <int D>
Result<bool> RTree<D>::Delete(const Rect<D>& mbr, uint64_t id) {
  if (!mbr.IsValid()) {
    return Status::InvalidArgument("Delete: invalid rectangle");
  }
  std::vector<PendingEntry> orphans;
  SPATIAL_ASSIGN_OR_RETURN(DeleteOutcome outcome,
                           DeleteRecursive(root_page_, mbr, id, &orphans));
  if (!outcome.found) return false;
  root_page_ = outcome.node_id;  // the root may have been shadowed
  --size_;
  // Reinsert entries of dissolved nodes at their original levels.
  for (const PendingEntry& orphan : orphans) {
    uint32_t reinsert_mask = 0;
    SPATIAL_RETURN_IF_ERROR(
        InsertAtLevel(orphan.entry, orphan.level, &reinsert_mask));
  }
  SPATIAL_RETURN_IF_ERROR(ShrinkRootIfNeeded());
  return true;
}

template <int D>
auto RTree<D>::DeleteRecursive(PageId node_id, const Rect<D>& mbr,
                               uint64_t id,
                               std::vector<PendingEntry>* orphans)
    -> Result<DeleteOutcome> {
  // Unlike insert, a delete only dirties the path to the matching entry —
  // so the descent reads in place, and a node is shadowed (re-fetched via
  // FetchMutable, a guaranteed pool hit) only once a match is known.
  SPATIAL_ASSIGN_OR_RETURN(PageHandle handle, pool_->Fetch(node_id));
  NodeView<D> view(handle.data(), pool_->page_size());
  if (!view.has_valid_magic()) {
    return Status::Corruption("delete: node page has bad magic");
  }
  const bool is_root = node_id == root_page_;

  if (view.is_leaf()) {
    for (uint32_t i = 0; i < view.count(); ++i) {
      const Entry<D> e = view.entry(i);
      if (e.id == id && e.mbr == mbr) {
        handle.Release();
        PageId current_id = node_id;
        SPATIAL_ASSIGN_OR_RETURN(PageHandle mut,
                                 FetchMutable(node_id, &current_id));
        NodeView<D> mut_view(mut.data(), pool_->page_size());
        mut_view.RemoveAt(i);
        mut.MarkDirty();
        DeleteOutcome outcome;
        outcome.found = true;
        outcome.underflow = !is_root && mut_view.count() < min_entries();
        outcome.updated_mbr = mut_view.ComputeMbr();
        outcome.node_id = current_id;
        return outcome;
      }
    }
    return DeleteOutcome{};
  }

  for (uint32_t i = 0; i < view.count(); ++i) {
    const Entry<D> child_entry = view.entry(i);
    if (!child_entry.mbr.Contains(mbr)) continue;
    const PageId child_id = static_cast<PageId>(child_entry.id);
    SPATIAL_ASSIGN_OR_RETURN(DeleteOutcome child_outcome,
                             DeleteRecursive(child_id, mbr, id, orphans));
    if (!child_outcome.found) continue;

    handle.Release();
    PageId current_id = node_id;
    SPATIAL_ASSIGN_OR_RETURN(PageHandle mut,
                             FetchMutable(node_id, &current_id));
    NodeView<D> mut_view(mut.data(), pool_->page_size());

    // Keep a lone under-full child under the root: the subsequent
    // root-shrink pass promotes it, preserving all entries.
    const bool dissolve_child =
        child_outcome.underflow && !(is_root && mut_view.count() == 1);
    if (dissolve_child) {
      SPATIAL_ASSIGN_OR_RETURN(PageHandle child_handle,
                               pool_->Fetch(child_outcome.node_id));
      NodeView<D> child_view(child_handle.data(), pool_->page_size());
      const uint16_t child_level = child_view.level();
      for (const Entry<D>& e : child_view.GetEntries()) {
        orphans->push_back(PendingEntry{e, child_level});
      }
      child_handle.Release();
      SPATIAL_RETURN_IF_ERROR(RetireOrFree(child_outcome.node_id));
      mut_view.RemoveAt(i);
    } else {
      mut_view.set_entry(
          i, Entry<D>{child_outcome.updated_mbr, child_outcome.node_id});
    }
    mut.MarkDirty();

    DeleteOutcome outcome;
    outcome.found = true;
    outcome.underflow = !is_root && mut_view.count() < min_entries();
    outcome.updated_mbr = mut_view.ComputeMbr();
    outcome.node_id = current_id;
    return outcome;
  }
  return DeleteOutcome{};
}

template <int D>
Status RTree<D>::ShrinkRootIfNeeded() {
  for (;;) {
    SPATIAL_ASSIGN_OR_RETURN(PageHandle root, pool_->Fetch(root_page_));
    NodeView<D> view(root.data(), pool_->page_size());
    if (view.is_leaf() || view.count() != 1) return Status::OK();
    const PageId new_root = static_cast<PageId>(view.entry(0).id);
    const PageId old_root = root_page_;
    root.Release();
    SPATIAL_RETURN_IF_ERROR(RetireOrFree(old_root));
    root_page_ = new_root;
    --root_level_;
  }
}

template <int D>
Status RTree<D>::Search(const Rect<D>& window,
                        std::vector<Entry<D>>* out) const {
  SPATIAL_CHECK(out != nullptr);
  if (window.IsEmpty()) return Status::OK();
  return SearchRecursive(root_page_, window, out);
}

template <int D>
Status RTree<D>::SearchRecursive(PageId node_id, const Rect<D>& window,
                                 std::vector<Entry<D>>* out) const {
  SPATIAL_ASSIGN_OR_RETURN(PageHandle handle, pool_->Fetch(node_id));
  NodeView<D> view(handle.data(), pool_->page_size());
  if (!view.has_valid_magic()) {
    return Status::Corruption("search: node page has bad magic");
  }
  const bool is_leaf = view.is_leaf();
  std::vector<Entry<D>> matching;
  for (uint32_t i = 0; i < view.count(); ++i) {
    const Entry<D> e = view.entry(i);
    if (e.mbr.Intersects(window)) matching.push_back(e);
  }
  // Release before descending: keeps the query pin-depth at one frame.
  handle.Release();
  if (is_leaf) {
    out->insert(out->end(), matching.begin(), matching.end());
    return Status::OK();
  }
  for (const Entry<D>& e : matching) {
    SPATIAL_RETURN_IF_ERROR(
        SearchRecursive(static_cast<PageId>(e.id), window, out));
  }
  return Status::OK();
}

template <int D>
Status RTree<D>::SearchContained(const Rect<D>& window,
                                 std::vector<Entry<D>>* out) const {
  SPATIAL_CHECK(out != nullptr);
  if (window.IsEmpty()) return Status::OK();
  return SearchContainedRecursive(root_page_, window, out);
}

template <int D>
Status RTree<D>::SearchContainedRecursive(PageId node_id,
                                          const Rect<D>& window,
                                          std::vector<Entry<D>>* out) const {
  SPATIAL_ASSIGN_OR_RETURN(PageHandle handle, pool_->Fetch(node_id));
  NodeView<D> view(handle.data(), pool_->page_size());
  if (!view.has_valid_magic()) {
    return Status::Corruption("search: node page has bad magic");
  }
  const bool is_leaf = view.is_leaf();
  std::vector<Entry<D>> matching;
  for (uint32_t i = 0; i < view.count(); ++i) {
    const Entry<D> e = view.entry(i);
    // Internal pruning still uses intersection: a child subtree may hold
    // contained objects even if the child MBR pokes out of the window.
    if (is_leaf ? window.Contains(e.mbr) : e.mbr.Intersects(window)) {
      matching.push_back(e);
    }
  }
  handle.Release();
  if (is_leaf) {
    out->insert(out->end(), matching.begin(), matching.end());
    return Status::OK();
  }
  for (const Entry<D>& e : matching) {
    SPATIAL_RETURN_IF_ERROR(
        SearchContainedRecursive(static_cast<PageId>(e.id), window, out));
  }
  return Status::OK();
}

template <int D>
Result<uint64_t> RTree<D>::CountIntersecting(const Rect<D>& window) const {
  if (window.IsEmpty()) return static_cast<uint64_t>(0);
  return CountRecursive(root_page_, window);
}

template <int D>
Result<uint64_t> RTree<D>::CountRecursive(PageId node_id,
                                          const Rect<D>& window) const {
  SPATIAL_ASSIGN_OR_RETURN(PageHandle handle, pool_->Fetch(node_id));
  NodeView<D> view(handle.data(), pool_->page_size());
  if (!view.has_valid_magic()) {
    return Status::Corruption("count: node page has bad magic");
  }
  const bool is_leaf = view.is_leaf();
  uint64_t count = 0;
  std::vector<PageId> children;
  for (uint32_t i = 0; i < view.count(); ++i) {
    const Entry<D> e = view.entry(i);
    if (!e.mbr.Intersects(window)) continue;
    if (is_leaf) {
      ++count;
    } else {
      children.push_back(static_cast<PageId>(e.id));
    }
  }
  handle.Release();
  for (const PageId child : children) {
    SPATIAL_ASSIGN_OR_RETURN(const uint64_t sub,
                             CountRecursive(child, window));
    count += sub;
  }
  return count;
}

template <int D>
Result<Rect<D>> RTree<D>::Bounds() const {
  SPATIAL_ASSIGN_OR_RETURN(PageHandle root, pool_->Fetch(root_page_));
  NodeView<D> view(root.data(), pool_->page_size());
  return view.ComputeMbr();
}

template class RTree<2>;
template class RTree<3>;
template class RTree<4>;

}  // namespace spatial
