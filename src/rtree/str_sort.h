#ifndef SPATIAL_RTREE_STR_SORT_H_
#define SPATIAL_RTREE_STR_SORT_H_

#include <cstddef>

#include "rtree/entry.h"

namespace spatial {

// Sort-Tile-Recursive ordering (Leutenegger et al. 1997): sort the run by
// the first dimension, partition it into slabs sized so each slab fills a
// whole number of tiles, then recurse on the remaining dimensions inside
// each slab. After the call, every `tile_capacity`-sized contiguous chunk
// of [begin, end) is a spatially coherent tile.
//
// This is the one STR implementation in the tree: the bulk loader packs
// each chunk into an R-tree node (`tile_capacity` = node capacity,
// rtree/bulk_load.cc), and the shard partitioner carves the run into
// per-shard tiles (`tile_capacity` = objects per shard,
// shard/partitioner.cc).
//
// `dim` is the dimension to sort first — pass 0; recursion uses the rest.
// Runs of at most `tile_capacity` entries are left untouched (they already
// fit one tile).
template <int D>
void StrTileSort(Entry<D>* begin, Entry<D>* end, int dim,
                 size_t tile_capacity);

extern template void StrTileSort<2>(Entry<2>*, Entry<2>*, int, size_t);
extern template void StrTileSort<3>(Entry<3>*, Entry<3>*, int, size_t);
extern template void StrTileSort<4>(Entry<4>*, Entry<4>*, int, size_t);

}  // namespace spatial

#endif  // SPATIAL_RTREE_STR_SORT_H_
