#include "rtree/split.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/macros.h"

namespace spatial {
namespace {

template <int D>
Rect<D> UnionOf(const std::vector<Entry<D>>& entries) {
  Rect<D> mbr = Rect<D>::Empty();
  for (const Entry<D>& e : entries) mbr.ExpandToInclude(e.mbr);
  return mbr;
}

// Shared distribution loop for the Guttman splits: after seeds are chosen,
// assign each remaining entry to the group whose cover needs the least
// enlargement, forcing assignments when a group must absorb all remaining
// entries to reach the minimum fill.
//
// `pick_next` selects which remaining entry to assign next; Guttman's linear
// split takes them in arbitrary order, the quadratic split picks the entry
// with the strongest preference for one group.
template <int D>
SplitResult<D> DistributeAfterSeeds(std::vector<Entry<D>> remaining,
                                    uint32_t min_entries,
                                    const Entry<D>& seed_a,
                                    const Entry<D>& seed_b,
                                    bool quadratic_pick_next) {
  SplitResult<D> result;
  result.group_a.push_back(seed_a);
  result.group_b.push_back(seed_b);
  Rect<D> cover_a = seed_a.mbr;
  Rect<D> cover_b = seed_b.mbr;

  while (!remaining.empty()) {
    // Force assignment when one group must take everything left to reach
    // the minimum fill.
    if (result.group_a.size() + remaining.size() == min_entries) {
      for (const Entry<D>& e : remaining) result.group_a.push_back(e);
      break;
    }
    if (result.group_b.size() + remaining.size() == min_entries) {
      for (const Entry<D>& e : remaining) result.group_b.push_back(e);
      break;
    }

    size_t pick = 0;
    if (quadratic_pick_next) {
      // PickNext: the entry with the greatest preference for one group.
      double best_pref = -1.0;
      for (size_t i = 0; i < remaining.size(); ++i) {
        const double d1 = cover_a.Enlargement(remaining[i].mbr);
        const double d2 = cover_b.Enlargement(remaining[i].mbr);
        const double pref = std::abs(d1 - d2);
        if (pref > best_pref) {
          best_pref = pref;
          pick = i;
        }
      }
    }
    const Entry<D> e = remaining[pick];
    remaining.erase(remaining.begin() + static_cast<ptrdiff_t>(pick));

    const double enlarge_a = cover_a.Enlargement(e.mbr);
    const double enlarge_b = cover_b.Enlargement(e.mbr);
    bool to_a;
    if (enlarge_a != enlarge_b) {
      to_a = enlarge_a < enlarge_b;
    } else if (cover_a.Area() != cover_b.Area()) {
      to_a = cover_a.Area() < cover_b.Area();
    } else {
      to_a = result.group_a.size() <= result.group_b.size();
    }
    if (to_a) {
      result.group_a.push_back(e);
      cover_a.ExpandToInclude(e.mbr);
    } else {
      result.group_b.push_back(e);
      cover_b.ExpandToInclude(e.mbr);
    }
  }
  return result;
}

// Guttman's linear split: seeds with the greatest separation, normalized by
// the extent of the full entry set along each dimension.
template <int D>
SplitResult<D> SplitLinear(std::vector<Entry<D>> entries,
                           uint32_t min_entries) {
  const Rect<D> total = UnionOf(entries);
  double best_separation = -std::numeric_limits<double>::infinity();
  size_t seed_a_idx = 0;
  size_t seed_b_idx = 1;
  for (int dim = 0; dim < D; ++dim) {
    // Entry with the highest low side and entry with the lowest high side.
    size_t highest_lo = 0;
    size_t lowest_hi = 0;
    for (size_t i = 1; i < entries.size(); ++i) {
      if (entries[i].mbr.lo[dim] > entries[highest_lo].mbr.lo[dim]) {
        highest_lo = i;
      }
      if (entries[i].mbr.hi[dim] < entries[lowest_hi].mbr.hi[dim]) {
        lowest_hi = i;
      }
    }
    const double width = total.hi[dim] - total.lo[dim];
    if (width <= 0.0 || highest_lo == lowest_hi) continue;
    const double separation =
        (entries[highest_lo].mbr.lo[dim] - entries[lowest_hi].mbr.hi[dim]) /
        width;
    if (separation > best_separation) {
      best_separation = separation;
      seed_a_idx = lowest_hi;
      seed_b_idx = highest_lo;
    }
  }
  if (seed_a_idx == seed_b_idx) {
    // Degenerate input (all rectangles identical): fall back to the first
    // two entries as seeds.
    seed_a_idx = 0;
    seed_b_idx = 1;
  }
  const Entry<D> seed_a = entries[seed_a_idx];
  const Entry<D> seed_b = entries[seed_b_idx];
  // Remove seeds (erase the later index first).
  const size_t first = std::min(seed_a_idx, seed_b_idx);
  const size_t second = std::max(seed_a_idx, seed_b_idx);
  entries.erase(entries.begin() + static_cast<ptrdiff_t>(second));
  entries.erase(entries.begin() + static_cast<ptrdiff_t>(first));
  return DistributeAfterSeeds(std::move(entries), min_entries, seed_a, seed_b,
                              /*quadratic_pick_next=*/false);
}

// Guttman's quadratic split: the seed pair wastes the most area.
template <int D>
SplitResult<D> SplitQuadratic(std::vector<Entry<D>> entries,
                              uint32_t min_entries) {
  size_t seed_a_idx = 0;
  size_t seed_b_idx = 1;
  double worst_waste = -std::numeric_limits<double>::infinity();
  for (size_t i = 0; i < entries.size(); ++i) {
    for (size_t j = i + 1; j < entries.size(); ++j) {
      const Rect<D> combined = Rect<D>::Union(entries[i].mbr, entries[j].mbr);
      const double waste =
          combined.Area() - entries[i].mbr.Area() - entries[j].mbr.Area();
      if (waste > worst_waste) {
        worst_waste = waste;
        seed_a_idx = i;
        seed_b_idx = j;
      }
    }
  }
  const Entry<D> seed_a = entries[seed_a_idx];
  const Entry<D> seed_b = entries[seed_b_idx];
  entries.erase(entries.begin() + static_cast<ptrdiff_t>(seed_b_idx));
  entries.erase(entries.begin() + static_cast<ptrdiff_t>(seed_a_idx));
  return DistributeAfterSeeds(std::move(entries), min_entries, seed_a, seed_b,
                              /*quadratic_pick_next=*/true);
}

// R*-tree split (Beckmann et al. 1990).
template <int D>
SplitResult<D> SplitRStar(std::vector<Entry<D>> entries,
                          uint32_t min_entries) {
  const size_t total = entries.size();
  const uint32_t m = min_entries;
  SPATIAL_DCHECK(total >= 2 * m);

  // ChooseSplitAxis: for every axis, consider entries sorted by low value
  // and by high value; sum the margins of all legal distributions. The axis
  // with the minimum margin sum wins.
  int best_axis = 0;
  double best_margin_sum = std::numeric_limits<double>::infinity();
  for (int axis = 0; axis < D; ++axis) {
    double margin_sum = 0.0;
    for (int by_hi = 0; by_hi < 2; ++by_hi) {
      std::sort(entries.begin(), entries.end(),
                [axis, by_hi](const Entry<D>& a, const Entry<D>& b) {
                  return by_hi ? a.mbr.hi[axis] < b.mbr.hi[axis]
                               : a.mbr.lo[axis] < b.mbr.lo[axis];
                });
      // Prefix/suffix covers for O(n) margin evaluation per sort order.
      std::vector<Rect<D>> prefix(total), suffix(total);
      prefix[0] = entries[0].mbr;
      for (size_t i = 1; i < total; ++i) {
        prefix[i] = Rect<D>::Union(prefix[i - 1], entries[i].mbr);
      }
      suffix[total - 1] = entries[total - 1].mbr;
      for (size_t i = total - 1; i-- > 0;) {
        suffix[i] = Rect<D>::Union(suffix[i + 1], entries[i].mbr);
      }
      for (size_t k = m; k + m <= total; ++k) {
        margin_sum += prefix[k - 1].Margin() + suffix[k].Margin();
      }
    }
    if (margin_sum < best_margin_sum) {
      best_margin_sum = margin_sum;
      best_axis = axis;
    }
  }

  // ChooseSplitIndex along the best axis: minimal overlap, then minimal
  // total area, over both sort orders.
  double best_overlap = std::numeric_limits<double>::infinity();
  double best_area = std::numeric_limits<double>::infinity();
  int best_by_hi = 0;
  size_t best_k = m;
  for (int by_hi = 0; by_hi < 2; ++by_hi) {
    std::sort(entries.begin(), entries.end(),
              [best_axis, by_hi](const Entry<D>& a, const Entry<D>& b) {
                return by_hi ? a.mbr.hi[best_axis] < b.mbr.hi[best_axis]
                             : a.mbr.lo[best_axis] < b.mbr.lo[best_axis];
              });
    std::vector<Rect<D>> prefix(total), suffix(total);
    prefix[0] = entries[0].mbr;
    for (size_t i = 1; i < total; ++i) {
      prefix[i] = Rect<D>::Union(prefix[i - 1], entries[i].mbr);
    }
    suffix[total - 1] = entries[total - 1].mbr;
    for (size_t i = total - 1; i-- > 0;) {
      suffix[i] = Rect<D>::Union(suffix[i + 1], entries[i].mbr);
    }
    for (size_t k = m; k + m <= total; ++k) {
      const double overlap = prefix[k - 1].OverlapArea(suffix[k]);
      const double area = prefix[k - 1].Area() + suffix[k].Area();
      if (overlap < best_overlap ||
          (overlap == best_overlap && area < best_area)) {
        best_overlap = overlap;
        best_area = area;
        best_by_hi = by_hi;
        best_k = k;
      }
    }
  }

  std::sort(entries.begin(), entries.end(),
            [best_axis, best_by_hi](const Entry<D>& a, const Entry<D>& b) {
              return best_by_hi ? a.mbr.hi[best_axis] < b.mbr.hi[best_axis]
                                : a.mbr.lo[best_axis] < b.mbr.lo[best_axis];
            });
  SplitResult<D> result;
  result.group_a.assign(entries.begin(),
                        entries.begin() + static_cast<ptrdiff_t>(best_k));
  result.group_b.assign(entries.begin() + static_cast<ptrdiff_t>(best_k),
                        entries.end());
  return result;
}

}  // namespace

template <int D>
SplitResult<D> SplitEntries(SplitAlgorithm algo, uint32_t min_entries,
                            std::vector<Entry<D>> entries) {
  SPATIAL_CHECK(entries.size() >= 2);
  SPATIAL_CHECK(min_entries >= 1);
  SPATIAL_CHECK(entries.size() >= 2 * static_cast<size_t>(min_entries));
  switch (algo) {
    case SplitAlgorithm::kLinear:
      return SplitLinear(std::move(entries), min_entries);
    case SplitAlgorithm::kQuadratic:
      return SplitQuadratic(std::move(entries), min_entries);
    case SplitAlgorithm::kRStar:
      return SplitRStar(std::move(entries), min_entries);
  }
  SPATIAL_CHECK(false);
  return SplitResult<D>{};
}

template SplitResult<2> SplitEntries<2>(SplitAlgorithm, uint32_t,
                                        std::vector<Entry<2>>);
template SplitResult<3> SplitEntries<3>(SplitAlgorithm, uint32_t,
                                        std::vector<Entry<3>>);
template SplitResult<4> SplitEntries<4>(SplitAlgorithm, uint32_t,
                                        std::vector<Entry<4>>);

}  // namespace spatial
