#include "rtree/validator.h"

#include <string>

#include "rtree/node_codec.h"

namespace spatial {
namespace {

template <int D>
struct ValidationContext {
  const RTree<D>* tree;
  bool check_min_fill;
  TreeReport report;
};

// Validates the subtree rooted at `node_id` (which must sit at `level`) and
// returns its tight MBR.
template <int D>
Result<Rect<D>> ValidateSubtree(ValidationContext<D>* ctx, PageId node_id,
                                uint16_t level) {
  BufferPool* pool = ctx->tree->pool();
  SPATIAL_ASSIGN_OR_RETURN(PageHandle handle, pool->Fetch(node_id));
  SPATIAL_RETURN_IF_ERROR(CheckNodePage<D>(handle.data(), pool->page_size()));
  NodeView<D> view(handle.data(), pool->page_size());

  if (view.level() != level) {
    return Status::Corruption(
        "node " + std::to_string(node_id) + " has level " +
        std::to_string(view.level()) + ", expected " + std::to_string(level));
  }

  const bool is_root = node_id == ctx->tree->root_page();
  const uint32_t count = view.count();
  if (is_root && level > 0 && count < 2) {
    return Status::Corruption("internal root has fewer than 2 entries");
  }
  if (!is_root && ctx->check_min_fill &&
      count < ctx->tree->min_entries()) {
    return Status::Corruption("node " + std::to_string(node_id) +
                              " violates minimum fill: " +
                              std::to_string(count) + " < " +
                              std::to_string(ctx->tree->min_entries()));
  }

  ++ctx->report.nodes;
  if (static_cast<size_t>(level) >= ctx->report.nodes_per_level.size()) {
    ctx->report.nodes_per_level.resize(level + 1, 0);
    ctx->report.sibling_overlap_per_level.resize(level + 1, 0.0);
    ctx->report.entry_area_per_level.resize(level + 1, 0.0);
    ctx->report.entry_margin_per_level.resize(level + 1, 0.0);
    ctx->report.avg_fill_per_level.resize(level + 1, 0.0);
  }
  ++ctx->report.nodes_per_level[level];
  ctx->report.avg_fill_per_level[level] +=
      static_cast<double>(count) / static_cast<double>(view.max_entries());

  // Quality metrics: pairwise overlap, total area, and total margin of
  // this node's entries (O(M^2) per node, M is the fan-out).
  for (uint32_t i = 0; i < count; ++i) {
    const Rect<D> a = view.entry(i).mbr;
    ctx->report.entry_area_per_level[level] += a.Area();
    ctx->report.entry_margin_per_level[level] += a.Margin();
    for (uint32_t j = i + 1; j < count; ++j) {
      ctx->report.sibling_overlap_per_level[level] +=
          a.OverlapArea(view.entry(j).mbr);
    }
  }

  if (view.is_leaf()) {
    ctx->report.leaf_entries += count;
    ctx->report.avg_leaf_fill +=
        static_cast<double>(count) / static_cast<double>(view.max_entries());
    return view.ComputeMbr();
  }

  const std::vector<Entry<D>> entries = view.GetEntries();
  handle.Release();  // keep validation pin-depth low
  Rect<D> mbr = Rect<D>::Empty();
  for (const Entry<D>& e : entries) {
    SPATIAL_ASSIGN_OR_RETURN(
        Rect<D> child_mbr,
        ValidateSubtree(ctx, static_cast<PageId>(e.id),
                        static_cast<uint16_t>(level - 1)));
    if (child_mbr != e.mbr) {
      return Status::Corruption("parent entry MBR of child page " +
                                std::to_string(e.id) +
                                " is not the child's tight MBR");
    }
    mbr.ExpandToInclude(child_mbr);
  }
  return mbr;
}

}  // namespace

template <int D>
Result<TreeReport> ValidateTree(const RTree<D>& tree, bool check_min_fill) {
  ValidationContext<D> ctx;
  ctx.tree = &tree;
  ctx.check_min_fill = check_min_fill;
  ctx.report.height = tree.height();
  SPATIAL_ASSIGN_OR_RETURN(
      Rect<D> root_mbr,
      ValidateSubtree(&ctx, tree.root_page(),
                      static_cast<uint16_t>(tree.height() - 1)));
  (void)root_mbr;
  if (ctx.report.leaf_entries != tree.size()) {
    return Status::Corruption(
        "leaf entry count " + std::to_string(ctx.report.leaf_entries) +
        " != tree size " + std::to_string(tree.size()));
  }
  const uint64_t leaves =
      ctx.report.nodes_per_level.empty() ? 0 : ctx.report.nodes_per_level[0];
  if (leaves > 0) {
    ctx.report.avg_leaf_fill /= static_cast<double>(leaves);
  }
  for (size_t level = 0; level < ctx.report.avg_fill_per_level.size();
       ++level) {
    const uint64_t n = ctx.report.nodes_per_level[level];
    if (n > 0) ctx.report.avg_fill_per_level[level] /= static_cast<double>(n);
  }
  return ctx.report;
}

template Result<TreeReport> ValidateTree<2>(const RTree<2>&, bool);
template Result<TreeReport> ValidateTree<3>(const RTree<3>&, bool);
template Result<TreeReport> ValidateTree<4>(const RTree<4>&, bool);

}  // namespace spatial
