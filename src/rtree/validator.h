#ifndef SPATIAL_RTREE_VALIDATOR_H_
#define SPATIAL_RTREE_VALIDATOR_H_

#include <cstdint>
#include <vector>

#include "common/result.h"
#include "rtree/rtree.h"

namespace spatial {

// Structural summary produced by a successful validation pass.
struct TreeReport {
  uint64_t leaf_entries = 0;
  uint64_t nodes = 0;
  int height = 0;
  std::vector<uint64_t> nodes_per_level;  // index = level (0 = leaves)
  double avg_leaf_fill = 0.0;             // mean count/M over leaf nodes

  // Quality diagnostics (classic R-tree metrics): per level, the summed
  // pairwise overlap area between sibling entries of each node, the summed
  // area of the entries, and the summed margin (perimeter). High overlap
  // forces NN/window searches to descend multiple siblings — the quantity
  // the R* split minimizes; margin measures how elongated the MBRs are.
  std::vector<double> sibling_overlap_per_level;
  std::vector<double> entry_area_per_level;
  std::vector<double> entry_margin_per_level;
  // Mean count/M over the nodes of each level (index 0 = leaves; the top
  // entry covers the root alone and is usually low).
  std::vector<double> avg_fill_per_level;

  double total_sibling_overlap() const {
    double total = 0.0;
    for (double o : sibling_overlap_per_level) total += o;
    return total;
  }
};

// Verifies every structural invariant of the tree:
//   * each page decodes as a node (magic, count bounds, valid rectangles);
//   * child level == parent level - 1 (uniform leaf depth);
//   * each parent entry's MBR equals the child's tight MBR exactly;
//   * non-root nodes satisfy the minimum fill (if check_min_fill);
//   * an internal root has >= 2 entries;
//   * total leaf entries == tree.size().
// Returns Corruption with a description on the first violation.
template <int D>
Result<TreeReport> ValidateTree(const RTree<D>& tree, bool check_min_fill);

extern template Result<TreeReport> ValidateTree<2>(const RTree<2>&, bool);
extern template Result<TreeReport> ValidateTree<3>(const RTree<3>&, bool);
extern template Result<TreeReport> ValidateTree<4>(const RTree<4>&, bool);

}  // namespace spatial

#endif  // SPATIAL_RTREE_VALIDATOR_H_
