#ifndef SPATIAL_RTREE_OPTIONS_H_
#define SPATIAL_RTREE_OPTIONS_H_

#include <cstdint>
#include <string>

#include "common/status.h"

namespace spatial {

// Node-split algorithm used by dynamic inserts.
enum class SplitAlgorithm {
  kLinear,     // Guttman 1984, linear-cost seed picking.
  kQuadratic,  // Guttman 1984, quadratic-cost seed picking (paper default).
  kRStar,      // Beckmann et al. 1990 axis/distribution choice.
};

const char* SplitAlgorithmName(SplitAlgorithm algo);

// Tuning knobs for a dynamic R-tree. The defaults mirror the SIGMOD'95
// setup: quadratic split, 40% minimum fill.
struct RTreeOptions {
  SplitAlgorithm split = SplitAlgorithm::kQuadratic;

  // Minimum node fill as a fraction of the maximum fan-out M;
  // m = max(1, floor(M * min_fill)), clamped to M/2.
  double min_fill = 0.4;

  // R*-tree forced reinsertion on first overflow per level per insert.
  bool rstar_reinsert = true;

  // Fraction of entries removed on forced reinsertion (R* paper: 30%).
  double reinsert_fraction = 0.3;

  Status Validate() const {
    if (min_fill <= 0.0 || min_fill > 0.5) {
      return Status::InvalidArgument("min_fill must be in (0, 0.5]");
    }
    if (reinsert_fraction <= 0.0 || reinsert_fraction >= 1.0) {
      return Status::InvalidArgument("reinsert_fraction must be in (0, 1)");
    }
    return Status::OK();
  }
};

inline const char* SplitAlgorithmName(SplitAlgorithm algo) {
  switch (algo) {
    case SplitAlgorithm::kLinear:
      return "linear";
    case SplitAlgorithm::kQuadratic:
      return "quadratic";
    case SplitAlgorithm::kRStar:
      return "rstar";
  }
  return "unknown";
}

}  // namespace spatial

#endif  // SPATIAL_RTREE_OPTIONS_H_
