#include "rtree/node_codec.h"

#include <cstring>
#include <string>

namespace spatial {

template <int D>
Status CheckNodePage(const char* data, uint32_t page_size) {
  if (page_size < sizeof(NodeHeader) + sizeof(Entry<D>)) {
    return Status::InvalidArgument("page too small for any node");
  }
  NodeHeader header;
  std::memcpy(&header, data, sizeof(header));
  if (header.magic != kNodeMagic) {
    return Status::Corruption("node page has bad magic");
  }
  const uint32_t max_entries = NodeView<D>::MaxEntries(page_size);
  if (header.count > max_entries) {
    return Status::Corruption("node entry count " +
                              std::to_string(header.count) +
                              " exceeds page capacity " +
                              std::to_string(max_entries));
  }
  // Entry rectangles of live entries must be valid (lo <= hi per dim).
  NodeView<D> view(const_cast<char*>(data), page_size);
  for (uint32_t i = 0; i < header.count; ++i) {
    if (!view.entry(i).mbr.IsValid()) {
      return Status::Corruption("node entry " + std::to_string(i) +
                                " has an invalid rectangle");
    }
  }
  return Status::OK();
}

template Status CheckNodePage<2>(const char*, uint32_t);
template Status CheckNodePage<3>(const char*, uint32_t);
template Status CheckNodePage<4>(const char*, uint32_t);

}  // namespace spatial
