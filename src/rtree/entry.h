#ifndef SPATIAL_RTREE_ENTRY_H_
#define SPATIAL_RTREE_ENTRY_H_

#include <cstdint>
#include <type_traits>

#include "geom/rect.h"

namespace spatial {

// One slot of an R-tree node. In a leaf (level 0) `id` is the user's object
// id; in an internal node `id` is the PageId of the child node (level-1).
// Entries are trivially copyable and are memcpy'd to/from page memory.
template <int D>
struct Entry {
  Rect<D> mbr;
  uint64_t id = 0;
};

static_assert(std::is_trivially_copyable_v<Entry<2>>,
              "Entry must be memcpy-safe for page serialization");
static_assert(sizeof(Entry<2>) == 4 * sizeof(double) + sizeof(uint64_t),
              "Entry<2> layout must be dense");

using Entry2 = Entry<2>;

}  // namespace spatial

#endif  // SPATIAL_RTREE_ENTRY_H_
