#include "rtree/str_sort.h"

#include <algorithm>
#include <cmath>

namespace spatial {

template <int D>
void StrTileSort(Entry<D>* begin, Entry<D>* end, int dim,
                 size_t tile_capacity) {
  const size_t n = static_cast<size_t>(end - begin);
  if (n <= tile_capacity || dim >= D) return;
  std::sort(begin, end, [dim](const Entry<D>& a, const Entry<D>& b) {
    return a.mbr.Center()[dim] < b.mbr.Center()[dim];
  });
  if (dim == D - 1) return;
  const double tiles =
      std::ceil(static_cast<double>(n) / static_cast<double>(tile_capacity));
  const double slabs_d =
      std::ceil(std::pow(tiles, 1.0 / static_cast<double>(D - dim)));
  const size_t slabs = std::max<size_t>(1, static_cast<size_t>(slabs_d));
  const size_t slab_size = (n + slabs - 1) / slabs;
  for (size_t start = 0; start < n; start += slab_size) {
    const size_t stop = std::min(n, start + slab_size);
    StrTileSort(begin + start, begin + stop, dim + 1, tile_capacity);
  }
}

template void StrTileSort<2>(Entry<2>*, Entry<2>*, int, size_t);
template void StrTileSort<3>(Entry<3>*, Entry<3>*, int, size_t);
template void StrTileSort<4>(Entry<4>*, Entry<4>*, int, size_t);

}  // namespace spatial
