#ifndef SPATIAL_RTREE_SPLIT_H_
#define SPATIAL_RTREE_SPLIT_H_

#include <cstdint>
#include <vector>

#include "rtree/entry.h"
#include "rtree/options.h"

namespace spatial {

template <int D>
struct SplitResult {
  std::vector<Entry<D>> group_a;
  std::vector<Entry<D>> group_b;
};

// Partitions an overflowing entry set (M+1 entries) into two groups, each
// with at least `min_entries` members, using the requested algorithm:
//
//  * kLinear    — Guttman's linear-cost split: seeds by greatest normalized
//                 separation, remaining entries by least enlargement.
//  * kQuadratic — Guttman's quadratic-cost split: seed pair maximizing dead
//                 area, remaining entries by strongest group preference.
//  * kRStar     — Beckmann et al.: choose the split axis by minimum margin
//                 sum, then the distribution with minimal overlap.
template <int D>
SplitResult<D> SplitEntries(SplitAlgorithm algo, uint32_t min_entries,
                            std::vector<Entry<D>> entries);

extern template SplitResult<2> SplitEntries<2>(SplitAlgorithm, uint32_t,
                                               std::vector<Entry<2>>);
extern template SplitResult<3> SplitEntries<3>(SplitAlgorithm, uint32_t,
                                               std::vector<Entry<3>>);
extern template SplitResult<4> SplitEntries<4>(SplitAlgorithm, uint32_t,
                                               std::vector<Entry<4>>);

}  // namespace spatial

#endif  // SPATIAL_RTREE_SPLIT_H_
