#ifndef SPATIAL_RTREE_BULK_LOAD_H_
#define SPATIAL_RTREE_BULK_LOAD_H_

#include <cstdint>
#include <vector>

#include "common/result.h"
#include "rtree/rtree.h"

namespace spatial {

// Bottom-up packed tree construction.
enum class BulkLoadMethod {
  kStr,      // Sort-Tile-Recursive (Leutenegger et al. 1997), any dimension.
  kHilbert,  // Hilbert-curve packing (Kamel & Faloutsos 1993), 2-D only.
  kMorton,   // Z-order packing, any dimension.
};

const char* BulkLoadMethodName(BulkLoadMethod method);

// Builds a packed R-tree over `items` (leaf entries) on the given pool.
// `fill_factor` in (0, 1] scales the per-node capacity; entries are spread
// evenly across the nodes of each level so every node keeps at least the
// tree's minimum fill. Requires fill_factor >= 2 * options.min_fill.
template <int D>
Result<RTree<D>> BulkLoad(BufferPool* pool, const RTreeOptions& options,
                          std::vector<Entry<D>> items, BulkLoadMethod method,
                          double fill_factor = 1.0);

extern template Result<RTree<2>> BulkLoad<2>(BufferPool*, const RTreeOptions&,
                                             std::vector<Entry<2>>,
                                             BulkLoadMethod, double);
extern template Result<RTree<3>> BulkLoad<3>(BufferPool*, const RTreeOptions&,
                                             std::vector<Entry<3>>,
                                             BulkLoadMethod, double);
extern template Result<RTree<4>> BulkLoad<4>(BufferPool*, const RTreeOptions&,
                                             std::vector<Entry<4>>,
                                             BulkLoadMethod, double);

}  // namespace spatial

#endif  // SPATIAL_RTREE_BULK_LOAD_H_
