#ifndef SPATIAL_RTREE_NODE_CODEC_H_
#define SPATIAL_RTREE_NODE_CODEC_H_

#include <cstdint>

#include "common/status.h"
#include "rtree/node.h"

namespace spatial {

// Structural sanity checks on raw page bytes before they are interpreted as
// a node. Returns Corruption with a description on failure. Guards against
// stale/garbage pages reaching the tree logic (failure-injection tests
// exercise this).
template <int D>
Status CheckNodePage(const char* data, uint32_t page_size);

extern template Status CheckNodePage<2>(const char*, uint32_t);
extern template Status CheckNodePage<3>(const char*, uint32_t);
extern template Status CheckNodePage<4>(const char*, uint32_t);

}  // namespace spatial

#endif  // SPATIAL_RTREE_NODE_CODEC_H_
