#ifndef SPATIAL_RTREE_NODE_H_
#define SPATIAL_RTREE_NODE_H_

#include <cstdint>
#include <cstring>
#include <vector>

#include "common/macros.h"
#include "geom/metrics_simd.h"
#include "rtree/entry.h"

namespace spatial {

// On-page node layout:
//
//   +-------------------------------+
//   | NodeHeader (8 bytes)          |  magic, level, count
//   +-------------------------------+
//   | Entry<D> [0]                  |  memcpy'd, densely packed
//   | Entry<D> [1]                  |
//   | ...                           |
//   +-------------------------------+
//
// level 0 = leaf. The maximum fan-out M is derived from the page size, as in
// the original system where node = disk page.

struct NodeHeader {
  uint32_t magic = 0;
  uint16_t level = 0;
  uint16_t count = 0;
};
static_assert(sizeof(NodeHeader) == 8, "NodeHeader must be 8 bytes");

inline constexpr uint32_t kNodeMagic = 0x52545245;  // "RTRE"

// A typed, non-owning view over one page's bytes. All accessors memcpy to
// avoid alignment/aliasing hazards; entries are small and the compiler
// lowers these to plain loads/stores.
template <int D>
class NodeView {
 public:
  NodeView(char* data, uint32_t page_size)
      : data_(data), page_size_(page_size) {
    SPATIAL_DCHECK(data != nullptr);
    SPATIAL_DCHECK(MaxEntries(page_size) >= 2);
  }

  // Maximum fan-out M for the given page size.
  static uint32_t MaxEntries(uint32_t page_size) {
    return (page_size - static_cast<uint32_t>(sizeof(NodeHeader))) /
           static_cast<uint32_t>(sizeof(Entry<D>));
  }

  // Formats the page as an empty node at `level`.
  void InitEmpty(uint16_t level) {
    NodeHeader header;
    header.magic = kNodeMagic;
    header.level = level;
    header.count = 0;
    std::memcpy(data_, &header, sizeof(header));
  }

  uint16_t level() const { return header().level; }
  bool is_leaf() const { return level() == 0; }
  uint16_t count() const { return header().count; }
  uint32_t max_entries() const { return MaxEntries(page_size_); }
  bool full() const { return count() >= max_entries(); }
  bool has_valid_magic() const { return header().magic == kNodeMagic; }

  Entry<D> entry(uint32_t i) const {
    SPATIAL_DCHECK(i < count());
    Entry<D> e;
    std::memcpy(&e, data_ + EntryOffset(i), sizeof(e));
    return e;
  }

  void set_entry(uint32_t i, const Entry<D>& e) {
    SPATIAL_DCHECK(i < count());
    std::memcpy(data_ + EntryOffset(i), &e, sizeof(e));
  }

  void Append(const Entry<D>& e) {
    NodeHeader h = header();
    SPATIAL_CHECK(h.count < max_entries());
    std::memcpy(data_ + EntryOffset(h.count), &e, sizeof(e));
    ++h.count;
    set_header(h);
  }

  // Removes entry i by moving the last entry into its slot (order is not
  // meaningful inside an R-tree node).
  void RemoveAt(uint32_t i) {
    NodeHeader h = header();
    SPATIAL_DCHECK(i < h.count);
    if (i != static_cast<uint32_t>(h.count - 1)) {
      set_entry(i, entry(h.count - 1));
    }
    --h.count;
    set_header(h);
  }

  void Clear() {
    NodeHeader h = header();
    h.count = 0;
    set_header(h);
  }

  // Replaces the node's entries wholesale (used by splits).
  void SetEntries(const std::vector<Entry<D>>& entries) {
    SPATIAL_CHECK(entries.size() <= max_entries());
    NodeHeader h = header();
    h.count = static_cast<uint16_t>(entries.size());
    set_header(h);
    for (uint32_t i = 0; i < entries.size(); ++i) {
      std::memcpy(data_ + EntryOffset(i), &entries[i], sizeof(Entry<D>));
    }
  }

  std::vector<Entry<D>> GetEntries() const {
    std::vector<Entry<D>> out;
    const uint32_t n = count();
    out.reserve(n);
    for (uint32_t i = 0; i < n; ++i) out.push_back(entry(i));
    return out;
  }

  // Stages all count() entries into `out` with one bulk copy (the entries
  // are densely packed on the page). `out` must hold at least count()
  // slots; traversals point it at reusable aligned scratch so the batch
  // distance kernels can stream the node in a single contiguous pass.
  void CopyEntries(Entry<D>* out) const {
    std::memcpy(out, data_ + sizeof(NodeHeader),
                static_cast<size_t>(count()) * sizeof(Entry<D>));
  }

  // Stages all count() entries as structure-of-arrays planes for the SIMD
  // distance kernels (geom/metrics_simd.h): `planes` must hold
  // SoaDoubles(D, count()) doubles at 64-byte alignment and `stride` must
  // be SoaStride(count()). Complements CopyEntries — traversals that need
  // both the ids (AoS) and the kernels' operands (SoA) stage both from one
  // pinned page.
  void CopyEntriesSoa(double* planes, size_t stride) const {
    TransposeToSoaDispatched<D>(entries(), count(), planes, stride);
  }

  // Direct pointer to the packed entry array, for reading a node in place
  // without the staging copy. Entry<D> is trivially copyable and the array
  // starts 8-byte aligned (header is 8 bytes, frames are allocated with
  // new[]), so in-place reads are safe on page images that were written
  // through this view. Only valid while the page's pin is held — callers
  // that recurse must stage instead.
  const Entry<D>* entries() const {
    return reinterpret_cast<const Entry<D>*>(data_ + sizeof(NodeHeader));
  }

  // Tight bounding rectangle over all entries (Empty() if none).
  Rect<D> ComputeMbr() const {
    Rect<D> mbr = Rect<D>::Empty();
    const uint32_t n = count();
    for (uint32_t i = 0; i < n; ++i) mbr.ExpandToInclude(entry(i).mbr);
    return mbr;
  }

 private:
  NodeHeader header() const {
    NodeHeader h;
    std::memcpy(&h, data_, sizeof(h));
    return h;
  }
  void set_header(const NodeHeader& h) {
    std::memcpy(data_, &h, sizeof(h));
  }
  static size_t EntryOffset(uint32_t i) {
    return sizeof(NodeHeader) + static_cast<size_t>(i) * sizeof(Entry<D>);
  }

  char* data_;
  uint32_t page_size_;
};

}  // namespace spatial

#endif  // SPATIAL_RTREE_NODE_H_
