#include "rtree/bulk_load.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <utility>

#include "common/macros.h"
#include "geom/metrics.h"
#include "rtree/str_sort.h"

namespace spatial {

// Grants the bulk loader access to RTree's private constructor.
class TreeBuilderAccess {
 public:
  template <int D>
  static RTree<D> Make(BufferPool* pool, const RTreeOptions& options,
                       PageId root_page, uint64_t size, uint16_t root_level) {
    return RTree<D>(pool, options, root_page, size, root_level);
  }
};

namespace {

const char* kMethodNames[] = {"str", "hilbert", "morton"};

// ---------------------------------------------------------------------------
// Space-filling curve keys (on a 2^16 grid per dimension).

constexpr int kGridBits = 16;

// Quantizes v in [lo, hi] to the 16-bit grid.
uint32_t Quantize(double v, double lo, double hi) {
  if (hi <= lo) return 0;
  double t = (v - lo) / (hi - lo);
  t = std::clamp(t, 0.0, 1.0);
  const double scaled = t * static_cast<double>((1u << kGridBits) - 1);
  return static_cast<uint32_t>(scaled);
}

// Hilbert index of a 2-D grid cell (Wikipedia xy2d construction).
uint64_t HilbertIndex2D(uint32_t x, uint32_t y) {
  uint64_t d = 0;
  for (uint32_t s = 1u << (kGridBits - 1); s > 0; s >>= 1) {
    const uint32_t rx = (x & s) ? 1 : 0;
    const uint32_t ry = (y & s) ? 1 : 0;
    d += static_cast<uint64_t>(s) * s * ((3 * rx) ^ ry);
    // Rotate the quadrant.
    if (ry == 0) {
      if (rx == 1) {
        x = s - 1 - x;
        y = s - 1 - y;
      }
      std::swap(x, y);
    }
  }
  return d;
}

// Interleaves the low 16 bits of up to 4 coordinates (Z-order / Morton).
template <int D>
uint64_t MortonIndex(const uint32_t (&coords)[D]) {
  uint64_t key = 0;
  for (int bit = kGridBits - 1; bit >= 0; --bit) {
    for (int dim = 0; dim < D; ++dim) {
      key = (key << 1) | ((coords[dim] >> bit) & 1u);
    }
  }
  return key;
}

// ---------------------------------------------------------------------------
// Orderings.

template <int D>
void SortByCurve(std::vector<Entry<D>>* entries, BulkLoadMethod method) {
  Rect<D> bounds = Rect<D>::Empty();
  for (const Entry<D>& e : *entries) bounds.ExpandToInclude(e.mbr);
  std::vector<std::pair<uint64_t, size_t>> keyed(entries->size());
  for (size_t i = 0; i < entries->size(); ++i) {
    const Point<D> c = (*entries)[i].mbr.Center();
    uint32_t grid[D];
    for (int dim = 0; dim < D; ++dim) {
      grid[dim] = Quantize(c[dim], bounds.lo[dim], bounds.hi[dim]);
    }
    uint64_t key;
    if (method == BulkLoadMethod::kHilbert) {
      SPATIAL_DCHECK(D == 2);
      key = HilbertIndex2D(grid[0], grid[1]);
    } else {
      key = MortonIndex<D>(grid);
    }
    keyed[i] = {key, i};
  }
  std::sort(keyed.begin(), keyed.end());
  std::vector<Entry<D>> sorted;
  sorted.reserve(entries->size());
  for (const auto& [key, idx] : keyed) sorted.push_back((*entries)[idx]);
  *entries = std::move(sorted);
}

// Packs an ordered entry run into nodes at `level`, spreading entries evenly
// so every node holds between floor(n/P) and ceil(n/P) entries.
template <int D>
Status PackLevel(BufferPool* pool, const std::vector<Entry<D>>& ordered,
                 uint16_t level, size_t node_capacity,
                 std::vector<Entry<D>>* parents) {
  const size_t n = ordered.size();
  const size_t num_nodes = (n + node_capacity - 1) / node_capacity;
  const size_t base = n / num_nodes;
  const size_t extra = n % num_nodes;
  size_t next = 0;
  parents->clear();
  parents->reserve(num_nodes);
  for (size_t node = 0; node < num_nodes; ++node) {
    const size_t take = base + (node < extra ? 1 : 0);
    SPATIAL_ASSIGN_OR_RETURN(PageHandle page, pool->NewPage());
    NodeView<D> view(page.data(), pool->page_size());
    view.InitEmpty(level);
    Rect<D> mbr = Rect<D>::Empty();
    for (size_t i = 0; i < take; ++i) {
      view.Append(ordered[next]);
      mbr.ExpandToInclude(ordered[next].mbr);
      ++next;
    }
    page.MarkDirty();
    parents->push_back(Entry<D>{mbr, page.id()});
  }
  SPATIAL_DCHECK(next == n);
  return Status::OK();
}

}  // namespace

const char* BulkLoadMethodName(BulkLoadMethod method) {
  return kMethodNames[static_cast<int>(method)];
}

template <int D>
Result<RTree<D>> BulkLoad(BufferPool* pool, const RTreeOptions& options,
                          std::vector<Entry<D>> items, BulkLoadMethod method,
                          double fill_factor) {
  if (pool == nullptr) {
    return Status::InvalidArgument("BulkLoad: pool is null");
  }
  SPATIAL_RETURN_IF_ERROR(options.Validate());
  if (fill_factor <= 0.0 || fill_factor > 1.0) {
    return Status::InvalidArgument("BulkLoad: fill_factor must be in (0, 1]");
  }
  if (fill_factor < 2.0 * options.min_fill) {
    return Status::InvalidArgument(
        "BulkLoad: fill_factor must be at least 2 * min_fill to preserve "
        "the minimum node fill");
  }
  if (method == BulkLoadMethod::kHilbert && D != 2) {
    return Status::InvalidArgument(
        "BulkLoad: Hilbert packing is implemented for 2-D only; use kMorton");
  }
  for (const Entry<D>& e : items) {
    if (!e.mbr.IsValid()) {
      return Status::InvalidArgument("BulkLoad: invalid entry rectangle");
    }
  }

  if (items.empty()) {
    // Degenerate case: an empty tree is just an empty leaf root.
    SPATIAL_ASSIGN_OR_RETURN(RTree<D> tree, RTree<D>::Create(pool, options));
    return tree;
  }

  const uint32_t max_entries = NodeView<D>::MaxEntries(pool->page_size());
  if (max_entries < 4) {
    return Status::InvalidArgument(
        "page size too small: a node must hold at least 4 entries");
  }
  const size_t node_capacity = std::max<size_t>(
      2, static_cast<size_t>(
             std::floor(static_cast<double>(max_entries) * fill_factor)));

  const uint64_t total = items.size();
  std::vector<Entry<D>> current = std::move(items);
  uint16_t level = 0;
  for (;;) {
    if (method == BulkLoadMethod::kStr) {
      // The tile sort is shared with the shard partitioner (rtree/str_sort.h).
      StrTileSort<D>(current.data(), current.data() + current.size(), 0,
                     node_capacity);
    } else {
      SortByCurve<D>(&current, method);
    }
    std::vector<Entry<D>> parents;
    SPATIAL_RETURN_IF_ERROR(
        PackLevel<D>(pool, current, level, node_capacity, &parents));
    if (parents.size() == 1) {
      return TreeBuilderAccess::Make<D>(
          pool, options, static_cast<PageId>(parents[0].id), total, level);
    }
    current = std::move(parents);
    ++level;
  }
}

template Result<RTree<2>> BulkLoad<2>(BufferPool*, const RTreeOptions&,
                                      std::vector<Entry<2>>, BulkLoadMethod,
                                      double);
template Result<RTree<3>> BulkLoad<3>(BufferPool*, const RTreeOptions&,
                                      std::vector<Entry<3>>, BulkLoadMethod,
                                      double);
template Result<RTree<4>> BulkLoad<4>(BufferPool*, const RTreeOptions&,
                                      std::vector<Entry<4>>, BulkLoadMethod,
                                      double);

}  // namespace spatial
