#ifndef SPATIAL_RTREE_RTREE_H_
#define SPATIAL_RTREE_RTREE_H_

#include <cstdint>
#include <optional>
#include <utility>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "geom/rect.h"
#include "rtree/entry.h"
#include "rtree/node.h"
#include "rtree/options.h"
#include "storage/buffer_pool.h"
#include "storage/cow.h"

namespace spatial {

// A disk-based R-tree (Guttman 1984) with selectable split algorithms
// (linear / quadratic / R*) and R* forced reinsertion. Nodes are pages of
// the underlying BufferPool; the maximum fan-out M is derived from the page
// size exactly as in the SIGMOD'95 testbed, so "page accesses" are the
// natural cost unit for every query.
//
// Usage:
//   DiskManager disk(1024);
//   BufferPool pool(&disk, 256);
//   auto tree = RTree<2>::Create(&pool, RTreeOptions{});
//   tree->Insert(Rect2::FromPoint({{0.3, 0.7}}), /*id=*/42);
//
// Pin-depth note: mutating operations keep the root-to-leaf path pinned, so
// the pool needs at least (height + 3) frames for inserts/deletes. Read-only
// traversals copy entries out and release each page before descending, so
// queries run with a single frame.
//
// Copy-on-write mode: with SetCowPolicy(policy) installed, mutations never
// edit a page the policy marks as shadow-required (i.e. reachable from a
// published snapshot). Such pages are copied to a fresh page first, the
// original is retired through the policy (not freed — concurrent snapshot
// readers may still traverse it), and the parent's child pointer is
// re-aimed at the copy; the root id itself may change on any mutation, so
// cow-mode callers must observe root_page() after each operation. With no
// policy (the default) behaviour is byte-for-byte the classic in-place
// update. See docs/DURABILITY.md.
//
// Not thread-safe.
template <int D>
class RTree {
 public:
  // Creates an empty tree (a single empty leaf as root).
  static Result<RTree> Create(BufferPool* pool, const RTreeOptions& options);

  // Re-opens a tree previously built on `pool`'s disk, rooted at
  // `root_page`. The entry count is recomputed by a traversal.
  static Result<RTree> Open(BufferPool* pool, const RTreeOptions& options,
                            PageId root_page);

  // Re-opens with a trusted entry count (e.g. from a SpatialDb meta page),
  // skipping the recount traversal. The root page is still validated.
  static Result<RTree> Open(BufferPool* pool, const RTreeOptions& options,
                            PageId root_page, uint64_t known_size);

  RTree(RTree&&) = default;
  RTree& operator=(RTree&&) = default;
  RTree(const RTree&) = delete;
  RTree& operator=(const RTree&) = delete;

  // Inserts an object with the given MBR. Duplicate (mbr, id) pairs are
  // permitted, as in classic R-trees.
  Status Insert(const Rect<D>& mbr, uint64_t id);

  // Deletes one object matching (mbr, id) exactly. Returns true if an
  // object was found and removed.
  Result<bool> Delete(const Rect<D>& mbr, uint64_t id);

  // Appends to `out` every leaf entry whose MBR intersects `window`.
  Status Search(const Rect<D>& window, std::vector<Entry<D>>* out) const;

  // Appends to `out` every leaf entry whose MBR lies fully inside `window`.
  Status SearchContained(const Rect<D>& window,
                         std::vector<Entry<D>>* out) const;

  // Number of leaf entries whose MBRs intersect `window`, without
  // materializing them.
  Result<uint64_t> CountIntersecting(const Rect<D>& window) const;

  // Tight bounding rectangle of all indexed objects (Empty() if none).
  Result<Rect<D>> Bounds() const;

  uint64_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  // Number of levels; 1 for a tree that is a single leaf.
  int height() const { return root_level_ + 1; }

  PageId root_page() const { return root_page_; }
  BufferPool* pool() const { return pool_; }
  const RTreeOptions& options() const { return options_; }

  uint32_t max_entries() const;
  uint32_t min_entries() const;

  // Installs (or, with nullptr, removes) the copy-on-write policy consulted
  // by every mutation. Owned by the caller; must outlive the tree or be
  // reset before destruction.
  void SetCowPolicy(CowPolicy* cow) { cow_ = cow; }
  CowPolicy* cow_policy() const { return cow_; }

  // Re-points this tree object at another published version (root page,
  // entry count, root level) without touching storage. Used by snapshot
  // readers to adopt a newly published version, and by the writer after
  // recovery. The caller is responsible for the triple being consistent.
  void Rebase(PageId root_page, uint64_t size, uint16_t root_level) {
    root_page_ = root_page;
    size_ = size;
    root_level_ = root_level;
  }

 private:
  friend class TreeBuilderAccess;  // bulk loader installs prebuilt roots

  RTree(BufferPool* pool, RTreeOptions options, PageId root_page,
        uint64_t size, uint16_t root_level)
      : pool_(pool),
        options_(options),
        root_page_(root_page),
        size_(size),
        root_level_(root_level) {}

  // An entry scheduled for reinsertion at a specific tree level.
  struct PendingEntry {
    Entry<D> entry;
    uint16_t level;
  };

  // What a recursive insert reports to its parent.
  struct InsertOutcome {
    Rect<D> updated_mbr;                  // new MBR of the visited child
    std::optional<Entry<D>> split_entry;  // sibling created by a split
    std::vector<PendingEntry> reinserts;  // R* forced-reinsertion backlog
    PageId node_id = kInvalidPageId;      // where the child lives now (COW)
  };

  struct DeleteOutcome {
    bool found = false;
    bool underflow = false;  // node fell below the minimum fill
    Rect<D> updated_mbr = Rect<D>::Empty();
    PageId node_id = kInvalidPageId;  // where the child lives now (COW)
  };

  Status InsertAtLevel(const Entry<D>& entry, uint16_t target_level,
                       uint32_t* reinsert_mask);
  Result<InsertOutcome> InsertRecursive(PageId node_id,
                                        const Entry<D>& entry,
                                        uint16_t target_level,
                                        uint32_t* reinsert_mask);
  Result<InsertOutcome> HandleOverflow(NodeView<D>* view, PageHandle* handle,
                                       PageId node_id, bool is_root,
                                       const Entry<D>& extra,
                                       uint32_t* reinsert_mask);

  // Pins `node_id` for mutation. Under an active CowPolicy that demands a
  // shadow, copies the page to a fresh one, retires the original, and
  // returns the copy; `*current_id` receives the id the caller must use
  // (and propagate to its parent) from now on.
  Result<PageHandle> FetchMutable(PageId node_id, PageId* current_id);

  // Allocates a page and reports it to the CowPolicy.
  Result<PageHandle> NewTrackedPage();

  // Removes a page from the current tree version: retires it through the
  // CowPolicy when one is installed, otherwise frees it immediately.
  Status RetireOrFree(PageId id);
  size_t ChooseSubtree(const NodeView<D>& node, const Rect<D>& mbr) const;

  Result<DeleteOutcome> DeleteRecursive(PageId node_id, const Rect<D>& mbr,
                                        uint64_t id,
                                        std::vector<PendingEntry>* orphans);
  Status ShrinkRootIfNeeded();

  Status SearchRecursive(PageId node_id, const Rect<D>& window,
                         std::vector<Entry<D>>* out) const;
  Status SearchContainedRecursive(PageId node_id, const Rect<D>& window,
                                  std::vector<Entry<D>>* out) const;
  Result<uint64_t> CountRecursive(PageId node_id,
                                  const Rect<D>& window) const;

  BufferPool* pool_;
  RTreeOptions options_;
  PageId root_page_;
  uint64_t size_;
  uint16_t root_level_;
  CowPolicy* cow_ = nullptr;
};

extern template class RTree<2>;
extern template class RTree<3>;
extern template class RTree<4>;

}  // namespace spatial

#endif  // SPATIAL_RTREE_RTREE_H_
