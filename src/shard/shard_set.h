#ifndef SPATIAL_SHARD_SHARD_SET_H_
#define SPATIAL_SHARD_SHARD_SET_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "db/serving_db.h"
#include "db/spatial_db.h"
#include "service/query_service.h"
#include "shard/partitioner.h"

namespace spatial {

// N independent QueryService shards over one spatially partitioned
// dataset. Build() runs the STR partitioner (shard/partitioner.h), bulk
// loads one database per tile, and starts one QueryService per shard; the
// ShardRouter (shard/shard_router.h) then scatters requests across them
// and merges the answers.
//
// Three backends:
//   * Memory (the default): each shard is an in-memory SpatialDb the set
//     owns, served via QueryService::Attach. Tests and benchmarks.
//   * File: each shard is `<dir>/shard_<i>.sdb`, bulk loaded, closed, and
//     reopened read-only via QueryService::Open.
//   * Serving (implies file): shards reopen via QueryService::OpenServing,
//     so the router can scatter durable kInsert / kDelete / kCheckpoint
//     alongside queries.
//
// Shards are fully independent — separate disks, buffer pools, worker
// pools, WALs — so there is no cross-shard coordination at all below the
// router; the only shared state during a query is the optional prune bound
// the router threads through KnnOptions (core/shared_bound.h).
template <int D>
class ShardSet {
 public:
  struct Options {
    uint32_t num_shards = 2;
    // File / serving backends. `dir` must exist; shard files inside it are
    // truncated by Build().
    bool file_backed = false;
    bool serving = false;  // implies file_backed
    std::string dir;
    uint32_t page_size = 1024;
    // Build-time buffer-pool pages per shard (the serving-side pools are
    // sized by `service.frames_per_worker`).
    uint32_t buffer_pages = 256;
    typename QueryService<D>::Options service;

    Status Validate() const {
      if (num_shards < 1) {
        return Status::InvalidArgument("ShardSet: num_shards must be >= 1");
      }
      if ((file_backed || serving) && dir.empty()) {
        return Status::InvalidArgument(
            "ShardSet: file/serving backend needs a directory");
      }
      return Status::OK();
    }
  };

  // Partitions `items`, builds and starts every shard. On any failure the
  // already-built shards are torn down and the error returned.
  static Result<std::unique_ptr<ShardSet>> Build(std::vector<Entry<D>> items,
                                                 const Options& options);

  ShardSet(const ShardSet&) = delete;
  ShardSet& operator=(const ShardSet&) = delete;

  uint32_t num_shards() const {
    return static_cast<uint32_t>(services_.size());
  }
  QueryService<D>& shard(uint32_t i) { return *services_[i]; }
  const QueryService<D>& shard(uint32_t i) const { return *services_[i]; }

  // Bounding rectangle of shard i's initial tile (Rect::Empty() if the
  // shard received no objects). Inserts are routed by MINDIST against
  // these; the tiles are not updated by later inserts, which only affects
  // routing quality, never correctness (deletes broadcast).
  const Rect<D>& tile(uint32_t i) const { return tiles_[i]; }

  // Objects initially loaded into shard i.
  uint64_t shard_size(uint32_t i) const { return sizes_[i]; }

  const Options& options() const { return options_; }

 private:
  explicit ShardSet(const Options& options) : options_(options) {}

  Options options_;
  std::vector<Rect<D>> tiles_;
  std::vector<uint64_t> sizes_;
  // Memory backend only: the databases the services attach to. Declared
  // before services_ so every service shuts down before its database dies.
  std::vector<std::unique_ptr<SpatialDb<D>>> dbs_;
  std::vector<std::unique_ptr<QueryService<D>>> services_;
};

extern template class ShardSet<2>;
extern template class ShardSet<3>;

}  // namespace spatial

#endif  // SPATIAL_SHARD_SHARD_SET_H_
