#include "shard/partitioner.h"

#include <utility>

#include "rtree/str_sort.h"

namespace spatial {

template <int D>
Result<Partition<D>> PartitionStr(std::vector<Entry<D>> items,
                                  uint32_t num_shards) {
  if (num_shards < 1) {
    return Status::InvalidArgument("PartitionStr: num_shards must be >= 1");
  }
  for (const Entry<D>& e : items) {
    if (!e.mbr.IsValid()) {
      return Status::InvalidArgument("PartitionStr: invalid entry rectangle");
    }
  }

  Partition<D> out;
  out.shards.resize(num_shards);
  out.tiles.assign(num_shards, Rect<D>::Empty());

  const size_t n = items.size();
  if (n == 0) return out;

  const size_t tile_capacity = (n + num_shards - 1) / num_shards;
  StrTileSort<D>(items.data(), items.data() + n, 0, tile_capacity);

  // Slice the ordered run evenly (base/extra spread, same as the bulk
  // loader's PackLevel): shard boundaries drift at most one entry from the
  // exact tile boundaries, which keeps tiles coherent while avoiding a
  // near-empty final shard.
  const size_t base = n / num_shards;
  const size_t extra = n % num_shards;
  size_t next = 0;
  for (uint32_t s = 0; s < num_shards; ++s) {
    const size_t take = base + (s < extra ? 1 : 0);
    out.shards[s].reserve(take);
    for (size_t i = 0; i < take; ++i) {
      out.tiles[s].ExpandToInclude(items[next].mbr);
      out.shards[s].push_back(items[next]);
      ++next;
    }
  }
  return out;
}

template Result<Partition<2>> PartitionStr<2>(std::vector<Entry<2>>, uint32_t);
template Result<Partition<3>> PartitionStr<3>(std::vector<Entry<3>>, uint32_t);

}  // namespace spatial
