#include "shard/shard_router.h"

#include <algorithm>
#include <chrono>
#include <cstring>
#include <future>
#include <limits>
#include <utility>
#include <vector>

#include "core/reverse_knn.h"
#include "core/shared_bound.h"
#include "core/skyline.h"
#include "geom/metrics.h"

namespace spatial {

namespace {

// The deterministic merge order: ascending squared distance, object id
// breaking ties. Shard answers arrive in shard order, so equal inputs
// always merge identically.
bool NeighborLess(const Neighbor& a, const Neighbor& b) {
  if (a.dist_sq != b.dist_sq) return a.dist_sq < b.dist_sq;
  return a.id < b.id;
}

uint64_t ElapsedNs(std::chrono::steady_clock::time_point start) {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - start)
          .count());
}

}  // namespace

template <int D>
ShardRouter<D>::ShardRouter(ShardSet<D>* shards, const Options& options)
    : shards_(shards),
      options_(options),
      trace_log_(obs::DistTraceLog::Options{options.slow_log_capacity,
                                            options.sampled_log_capacity,
                                            options.slow_threshold_ns}) {
  RegisterMetrics();
}

template <int D>
void ShardRouter<D>::RegisterMetrics() {
  failed_ = metrics_.AddCounter("spatial_router_requests_failed_total",
                                "Router requests that returned an error");
  rknn_candidates_ = metrics_.AddCounter(
      "spatial_router_rknn_candidates_total",
      "Reverse-kNN candidates surviving the global sector re-selection");
  rknn_verify_rounds_ = metrics_.AddCounter(
      "spatial_router_rknn_verify_rounds_total",
      "Cross-shard kNN rounds issued to verify reverse-kNN candidates");
  traces_assembled_ = metrics_.AddCounter(
      "spatial_router_traces_assembled_total",
      "Sampled cross-shard traces assembled from per-shard trace records");
  merge_ns_ = metrics_.AddHistogram(
      "spatial_router_merge_ns",
      "Scatter-gather wall time per request (submit to merged answer)");

  // Requests by kind: one spatial_router_requests_total family, one sample
  // per kind labelled kind="..." (label values keep the hyphenated kind
  // names — hyphens are legal in label values, unlike metric names). The
  // cells are relaxed atomics written from any connection thread; the
  // collector reads them live at scrape time.
  metrics_.AddCollector([this](obs::ExpositionWriter& writer) {
    writer.Family("spatial_router_requests_total", "Router requests by kind",
                  obs::MetricType::kCounter);
    for (int k = 0; k < kNumQueryKinds; ++k) {
      writer.Sample(
          "spatial_router_requests_total",
          std::string("kind=\"") + QueryKindName(static_cast<QueryKind>(k)) +
              "\"",
          requests_by_kind_[k].value());
    }
    writer.Family(
        "spatial_router_traces_recorded_total",
        "Scatter round trips offered to the router trace log (sampled or "
        "slow)",
        obs::MetricType::kCounter);
    writer.Sample("spatial_router_traces_recorded_total", "",
                  trace_log_.total_recorded());
    writer.Family("spatial_router_trace_log_entries",
                  "Trace-log entries currently retained, by population",
                  obs::MetricType::kGauge);
    writer.Sample("spatial_router_trace_log_entries", "population=\"slow\"",
                  static_cast<uint64_t>(trace_log_.slow_captured()));
    writer.Sample("spatial_router_trace_log_entries",
                  "population=\"sampled\"",
                  static_cast<uint64_t>(trace_log_.sampled_captured()));
  });

  // Per-shard families, labelled shard="i". Reading Snapshot() is safe
  // while workers run (relaxed single-writer counters).
  metrics_.AddCollector([this](obs::ExpositionWriter& writer) {
    writer.Family("spatial_shard_queries_total",
                  "Queries executed per shard", obs::MetricType::kCounter);
    for (uint32_t s = 0; s < shards_->num_shards(); ++s) {
      const ServiceStats stats = shards_->shard(s).Snapshot();
      writer.Sample("spatial_shard_queries_total",
                    "shard=\"" + std::to_string(s) + "\",outcome=\"ok\"",
                    stats.queries_ok);
      writer.Sample("spatial_shard_queries_total",
                    "shard=\"" + std::to_string(s) + "\",outcome=\"failed\"",
                    stats.queries_failed);
    }
    writer.Family("spatial_shard_query_latency_ns",
                  "Per-shard query latency (worker wall time)",
                  obs::MetricType::kHistogram);
    for (uint32_t s = 0; s < shards_->num_shards(); ++s) {
      const ServiceStats stats = shards_->shard(s).Snapshot();
      writer.Histogram("spatial_shard_query_latency_ns",
                       "shard=\"" + std::to_string(s) + "\"", stats.latency);
    }
    writer.Family("spatial_shard_objects", "Objects initially loaded",
                  obs::MetricType::kGauge);
    for (uint32_t s = 0; s < shards_->num_shards(); ++s) {
      writer.Sample("spatial_shard_objects",
                    "shard=\"" + std::to_string(s) + "\"",
                    shards_->shard_size(s));
    }
  });
}

template <int D>
QueryResponse<D> ShardRouter<D>::Execute(const QueryRequest<D>& request) {
  requests_by_kind_[static_cast<int>(request.kind)].FetchAdd(1);
  QueryResponse<D> response;
  switch (request.kind) {
    case QueryKind::kKnn:
    case QueryKind::kConstrainedKnn:
    case QueryKind::kRange:
    case QueryKind::kTopK:
    case QueryKind::kBatchKnn:
    case QueryKind::kNnSkyline:
    case QueryKind::kApproxKnn:
      response = ScatterQuery(request);
      break;
    case QueryKind::kReverseKnn:
      response = RouteReverseKnn(request);
      break;
    case QueryKind::kInsert:
      response = RouteInsert(request);
      break;
    case QueryKind::kDelete:
    case QueryKind::kCheckpoint:
      response = Broadcast(request);
      break;
  }
  if (!response.ok()) failed_->Inc();
  return response;
}

template <int D>
QueryResponse<D> ShardRouter<D>::ScatterQuery(const QueryRequest<D>& request) {
  const auto start = std::chrono::steady_clock::now();
  const uint32_t n = shards_->num_shards();

  // Root-of-trace sampling. Each router thread owns a cheap xorshift state
  // (lazily seeded from its own slot address, so threads diverge without
  // any shared state); a request is traced when the caller propagated a
  // sampled context (wire v3) or when the router's own draw fires. The
  // unsampled path pays one draw here and nothing per shard — the
  // per-shard completion clocks below run only for sampled requests.
  thread_local uint64_t tls_rng = 0;
  if (tls_rng == 0) {
    tls_rng = 0x9E3779B97F4A7C15ULL ^ reinterpret_cast<uint64_t>(&tls_rng);
  }
  const bool external = request.trace_sampled && request.trace_id != 0;
  const bool sampled =
      external || obs::SampleDraw(&tls_rng, options_.trace_sample_per_million);
  const uint64_t trace_id =
      sampled ? (external ? request.trace_id : (obs::NextRandom(&tls_rng) | 1))
              : 0;
  const uint64_t root_span_id = sampled ? (obs::NextRandom(&tls_rng) | 1) : 0;

  // One bound per Execute() call, on the stack: concurrent router calls
  // never share a bound, so no reset/epoch protocol is needed. Streaming
  // applies to plain and approximate kNN — the constrained search clips by
  // region and the incremental top-k scan does not take KnnOptions. For
  // kApproxKnn the published bounds are exact (unrelaxed) local k-th
  // distances, so streaming tightens pruning without widening the
  // (1+epsilon) contract.
  SharedPruneBound bound;
  QueryRequest<D> scattered = request;
  if (options_.stream_bound && (request.kind == QueryKind::kKnn ||
                                request.kind == QueryKind::kApproxKnn)) {
    scattered.knn.shared_bound = &bound;
  }
  if (sampled) {
    // Every scattered copy carries the sampled context, so each shard
    // force-samples and returns its QueryTraceRecord in the response.
    scattered.trace_id = trace_id;
    scattered.parent_span_id = root_span_id;
    scattered.trace_sampled = true;
  }

  std::vector<std::future<QueryResponse<D>>> futures;
  futures.reserve(n);
  for (uint32_t s = 0; s < n; ++s) {
    futures.push_back(shards_->shard(s).Submit(scattered));
  }

  uint64_t completed_ns[obs::kMaxTraceShards] = {};
  std::vector<QueryResponse<D>> answers;
  answers.reserve(n);
  for (uint32_t s = 0; s < n; ++s) {
    answers.push_back(futures[s].get());
    if (sampled && s < obs::kMaxTraceShards) {
      completed_ns[s] = ElapsedNs(start);
    }
  }
  const uint64_t scatter_ns = ElapsedNs(start);

  QueryResponse<D> merged;
  for (const auto& a : answers) {
    if (!a.status.ok() && merged.status.ok()) merged.status = a.status;
    merged.stats.Add(a.stats);
    // The scatter runs shards concurrently: the round trip's critical path
    // is the slowest shard, so that is the latency we report.
    merged.latency_ns = std::max(merged.latency_ns, a.latency_ns);
  }
  if (!merged.status.ok()) {
    const uint64_t total_ns = ElapsedNs(start);
    merge_ns_->Record(total_ns);
    if (sampled || total_ns >= trace_log_.slow_threshold_ns()) {
      RecordScatterTrace(request, sampled, trace_id, root_span_id, answers,
                         sampled ? completed_ns : nullptr, scatter_ns,
                         total_ns, merged.stats);
    }
    return merged;
  }

  switch (request.kind) {
    case QueryKind::kKnn:
    case QueryKind::kConstrainedKnn:
    case QueryKind::kTopK:
    case QueryKind::kApproxKnn: {
      const uint32_t k = request.kind == QueryKind::kTopK ? request.top_k
                                                          : request.knn.k;
      for (const auto& a : answers) {
        merged.neighbors.insert(merged.neighbors.end(), a.neighbors.begin(),
                                a.neighbors.end());
      }
      std::sort(merged.neighbors.begin(), merged.neighbors.end(),
                NeighborLess);
      if (merged.neighbors.size() > k) merged.neighbors.resize(k);
      break;
    }
    case QueryKind::kRange: {
      // A single tree reports range hits in traversal order, which is a
      // tree-shape artifact; the router normalizes to ascending object id
      // so the merged answer is a pure function of the dataset.
      for (const auto& a : answers) {
        merged.entries.insert(merged.entries.end(), a.entries.begin(),
                              a.entries.end());
      }
      std::sort(merged.entries.begin(), merged.entries.end(),
                [](const Entry<D>& x, const Entry<D>& y) {
                  return x.id < y.id;
                });
      break;
    }
    case QueryKind::kBatchKnn: {
      const uint32_t k = request.knn.k;
      const size_t num_queries = request.batch_queries.size();
      std::vector<Neighbor> scratch;
      merged.batch_offsets.reserve(num_queries + 1);
      merged.batch_offsets.push_back(0);
      for (size_t q = 0; q < num_queries; ++q) {
        scratch.clear();
        for (const auto& a : answers) {
          const uint32_t lo = a.batch_offsets[q];
          const uint32_t hi = a.batch_offsets[q + 1];
          scratch.insert(scratch.end(), a.neighbors.begin() + lo,
                         a.neighbors.begin() + hi);
        }
        std::sort(scratch.begin(), scratch.end(), NeighborLess);
        if (scratch.size() > k) scratch.resize(k);
        merged.neighbors.insert(merged.neighbors.end(), scratch.begin(),
                                scratch.end());
        merged.batch_offsets.push_back(
            static_cast<uint32_t>(merged.neighbors.size()));
      }
      break;
    }
    case QueryKind::kNnSkyline: {
      // The global skyline is a subset of the union of shard skylines: a
      // global dominator of object o shares o's shard (where it already
      // eliminated o) or is itself undominated there and reaches the
      // union — either way o does not survive. Distance vectors are
      // recomputed with the canonical scalar expression (core/skyline.h),
      // bit-identical to the kernels the shards browsed with, so the
      // merged answer matches a single whole-dataset tree byte for byte.
      std::vector<Entry<D>> pool;
      for (const auto& a : answers) {
        pool.insert(pool.end(), a.entries.begin(), a.entries.end());
      }
      const size_t m = request.batch_queries.size();
      const Point<D>* sources = request.batch_queries.data();
      std::vector<double> dists(pool.size() * m);
      std::vector<double> sums(pool.size());
      for (size_t i = 0; i < pool.size(); ++i) {
        SkylineDistVector<D>(sources, m, pool[i].mbr, &dists[i * m]);
        double sum = 0.0;
        for (size_t j = 0; j < m; ++j) sum += dists[i * m + j];
        sums[i] = sum;
      }
      // Ascending (sum, id) is both the output order and a topological
      // order for dominance (a dominator's sum is strictly smaller), so
      // testing each entry against the already-kept prefix is exact.
      std::vector<size_t> order(pool.size());
      for (size_t i = 0; i < order.size(); ++i) order[i] = i;
      std::sort(order.begin(), order.end(), [&](size_t x, size_t y) {
        if (sums[x] != sums[y]) return sums[x] < sums[y];
        return pool[x].id < pool[y].id;
      });
      std::vector<size_t> kept;
      for (size_t idx : order) {
        bool dominated = false;
        for (size_t member : kept) {
          if (SkylineDominates(&dists[member * m], &dists[idx * m], m)) {
            dominated = true;
            break;
          }
        }
        if (!dominated) kept.push_back(idx);
      }
      merged.entries.reserve(kept.size());
      for (size_t idx : kept) merged.entries.push_back(pool[idx]);
      break;
    }
    default:
      break;
  }

  const uint64_t total_ns = ElapsedNs(start);
  merge_ns_->Record(total_ns);
  if (sampled || total_ns >= trace_log_.slow_threshold_ns()) {
    RecordScatterTrace(request, sampled, trace_id, root_span_id, answers,
                       sampled ? completed_ns : nullptr, scatter_ns, total_ns,
                       merged.stats);
  }
  return merged;
}

// Assembles the root spans, one ShardSpan per answer, the slowest-shard
// queue wait, and the straggler shard into a RouterTraceRecord, then
// offers it to the trace log (slow ring or sampled reservoir — the log
// routes by total_ns). For unsampled slow captures `completed_ns` is null
// and the per-shard detail degrades to what every answer carries anyway
// (execute time + merged stats).
template <int D>
void ShardRouter<D>::RecordScatterTrace(
    const QueryRequest<D>& request, bool sampled, uint64_t trace_id,
    uint64_t root_span_id, const std::vector<QueryResponse<D>>& answers,
    const uint64_t* completed_ns, uint64_t scatter_ns, uint64_t total_ns,
    const QueryStats& merged_stats) {
  obs::RouterTraceRecord rec;
  rec.trace_id = trace_id;
  rec.root_span_id = root_span_id;
  rec.SetKindName(QueryKindName(request.kind));
  rec.k = request.kind == QueryKind::kTopK ? request.top_k : request.knn.k;
  rec.traced = sampled;
  rec.scatter_ns = scatter_ns;
  rec.merge_ns = total_ns - scatter_ns;
  rec.total_ns = total_ns;
  rec.num_shards = static_cast<uint32_t>(answers.size());
  rec.merged_stats = merged_stats;

  uint64_t worst = 0;
  for (uint32_t s = 0; s < rec.captured_shards(); ++s) {
    obs::ShardSpan& span = rec.shards[s];
    const QueryResponse<D>& a = answers[s];
    span.shard = s;
    span.execute_ns = a.latency_ns;
    span.stats = a.stats;
    if (completed_ns != nullptr) span.rpc_ns = completed_ns[s];
    if (a.has_trace) {
      span.traced = true;
      span.worker = a.trace.worker;
      span.queue_wait_ns = a.trace.queue_wait_ns;
      std::memcpy(span.nodes_per_level, a.trace.nodes_per_level,
                  sizeof(span.nodes_per_level));
      rec.queue_ns = std::max(rec.queue_ns, span.queue_wait_ns);
    }
    // Straggler = largest router-observed round trip; without one (slow
    // capture of an unsampled request) fall back to the shard's own
    // queue + execute accounting.
    const uint64_t cost =
        span.rpc_ns != 0 ? span.rpc_ns : span.queue_wait_ns + span.execute_ns;
    if (cost > worst) {
      worst = cost;
      rec.straggler = s;
    }
  }
  if (sampled) traces_assembled_->Inc();
  trace_log_.Record(rec);
}

template <int D>
QueryResponse<D> ShardRouter<D>::RouteReverseKnn(
    const QueryRequest<D>& request) {
  const auto start = std::chrono::steady_clock::now();
  const uint32_t n = shards_->num_shards();

  // Phase 1: every shard generates (but does not verify) its local sector
  // candidates. A local filter only ever drops objects that its own shard
  // proves cannot be reverse k-NN — more objects globally can only
  // strengthen that proof — so the union still contains every answer.
  QueryRequest<D> scattered = request;
  scattered.rknn_candidates_only = true;

  std::vector<std::future<QueryResponse<D>>> futures;
  futures.reserve(n);
  for (uint32_t s = 0; s < n; ++s) {
    futures.push_back(shards_->shard(s).Submit(scattered));
  }
  std::vector<QueryResponse<D>> answers;
  answers.reserve(n);
  for (auto& f : futures) answers.push_back(f.get());

  QueryResponse<D> merged;
  for (const auto& a : answers) {
    if (!a.status.ok() && merged.status.ok()) merged.status = a.status;
    merged.stats.Add(a.stats);
    merged.latency_ns = std::max(merged.latency_ns, a.latency_ns);
  }
  if (!merged.status.ok()) {
    merge_ns_->Record(ElapsedNs(start));
    return merged;
  }

  if constexpr (D != 2) {
    // Unreachable — every shard already answered kInvalidArgument above —
    // but keeps this instantiation from touching the planar-only filter.
    merged.status =
        Status::InvalidArgument("reverse-knn supports 2-D services only");
    merge_ns_->Record(ElapsedNs(start));
    return merged;
  } else {
    // Phase 2: re-run the sector selection globally. A shard's local
    // filter may keep objects that closer same-sector objects in *other*
    // shards eliminate, so the union is re-fed — in the ascending
    // (dist, id) order the filter requires — through a fresh filter.
    // Distances are recomputed with the scalar MINDIST, bit-identical to
    // the kernel keys the shards browsed with.
    struct Candidate {
      double dist_sq;
      Entry<2> entry;
    };
    std::vector<Candidate> pool;
    for (const auto& a : answers) {
      for (const auto& e : a.entries) {
        pool.push_back(Candidate{MinDistSq(request.query, e.mbr), e});
      }
    }
    std::sort(pool.begin(), pool.end(),
              [](const Candidate& x, const Candidate& y) {
                if (x.dist_sq != y.dist_sq) return x.dist_sq < y.dist_sq;
                return x.entry.id < y.entry.id;
              });
    ReverseKnnSectorFilter filter(request.query, request.knn.k);
    std::vector<Candidate> selected;
    for (const auto& c : pool) {
      if (filter.Closed(c.dist_sq)) break;
      if (filter.Offer(c.entry.mbr.Center(), c.dist_sq)) {
        selected.push_back(c);
      }
    }
    rknn_candidates_->Add(selected.size());

    if (request.rknn_candidates_only) {
      merged.entries.reserve(selected.size());
      for (const auto& c : selected) merged.entries.push_back(c.entry);
      merge_ns_->Record(ElapsedNs(start));
      return merged;
    }

    // Phase 3: verify each survivor with an exact cross-shard (k+1)-NN at
    // its location — the single-tree rule (core/reverse_knn.h), but the
    // neighbor list now spans every shard. Rounds run sequentially, so
    // their latencies add onto the candidate phase's.
    for (const auto& c : selected) {
      if (c.dist_sq == 0.0) {
        // Coincides with the query: unconditionally a reverse k-NN.
        merged.neighbors.push_back(Neighbor{c.entry.id, 0.0});
        continue;
      }
      const QueryRequest<D> verify =
          QueryRequest<D>::Knn(c.entry.mbr.Center(), request.knn.k + 1);
      QueryResponse<D> around = ScatterQuery(verify);
      rknn_verify_rounds_->Inc();
      if (!around.status.ok()) {
        merged.status = around.status;
        merge_ns_->Record(ElapsedNs(start));
        return merged;
      }
      merged.stats.Add(around.stats);
      merged.latency_ns += around.latency_ns;
      if (ReverseKnnQualifies(around.neighbors, c.entry.id, c.dist_sq,
                              request.knn.k)) {
        merged.neighbors.push_back(Neighbor{c.entry.id, c.dist_sq});
      }
    }
    std::sort(merged.neighbors.begin(), merged.neighbors.end(), NeighborLess);
    merge_ns_->Record(ElapsedNs(start));
    return merged;
  }
}

template <int D>
QueryResponse<D> ShardRouter<D>::RouteInsert(const QueryRequest<D>& request) {
  const auto start = std::chrono::steady_clock::now();
  // Nearest initial tile by MINDIST, ties (e.g. the MBR overlaps several
  // tiles at distance 0) to the lowest index. Empty tiles — shards that
  // received no objects at build time — still win when every tile is
  // empty; then shard 0 takes the insert.
  uint32_t target = 0;
  double best = std::numeric_limits<double>::infinity();
  for (uint32_t s = 0; s < shards_->num_shards(); ++s) {
    const Rect<D>& tile = shards_->tile(s);
    if (tile.IsEmpty()) continue;
    const double d = MinDistSq<D>(tile, request.window);
    if (d < best) {
      best = d;
      target = s;
    }
  }
  QueryResponse<D> response = shards_->shard(target).Execute(request);
  merge_ns_->Record(ElapsedNs(start));
  return response;
}

template <int D>
QueryResponse<D> ShardRouter<D>::Broadcast(const QueryRequest<D>& request) {
  const auto start = std::chrono::steady_clock::now();
  const uint32_t n = shards_->num_shards();
  std::vector<std::future<QueryResponse<D>>> futures;
  futures.reserve(n);
  for (uint32_t s = 0; s < n; ++s) {
    futures.push_back(shards_->shard(s).Submit(request));
  }
  QueryResponse<D> merged;
  for (auto& f : futures) {
    QueryResponse<D> a = f.get();
    if (!a.status.ok() && merged.status.ok()) merged.status = a.status;
    merged.affected += a.affected;
    merged.lsn = std::max(merged.lsn, a.lsn);
    merged.latency_ns = std::max(merged.latency_ns, a.latency_ns);
  }
  merge_ns_->Record(ElapsedNs(start));
  return merged;
}

template class ShardRouter<2>;
template class ShardRouter<3>;

}  // namespace spatial
