#include "shard/shard_router.h"

#include <algorithm>
#include <chrono>
#include <future>
#include <limits>
#include <utility>
#include <vector>

#include "core/shared_bound.h"
#include "geom/metrics.h"

namespace spatial {

namespace {

// The deterministic merge order: ascending squared distance, object id
// breaking ties. Shard answers arrive in shard order, so equal inputs
// always merge identically.
bool NeighborLess(const Neighbor& a, const Neighbor& b) {
  if (a.dist_sq != b.dist_sq) return a.dist_sq < b.dist_sq;
  return a.id < b.id;
}

uint64_t ElapsedNs(std::chrono::steady_clock::time_point start) {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - start)
          .count());
}

}  // namespace

template <int D>
ShardRouter<D>::ShardRouter(ShardSet<D>* shards, const Options& options)
    : shards_(shards), options_(options) {
  RegisterMetrics();
}

template <int D>
void ShardRouter<D>::RegisterMetrics() {
  for (int k = 0; k < kNumQueryKinds; ++k) {
    // Kind names like "top-k" carry hyphens, which are legal in label
    // values but not in Prometheus metric names — fold them to '_'.
    std::string name = std::string("spatial_router_requests_total_") +
                       QueryKindName(static_cast<QueryKind>(k));
    std::replace(name.begin(), name.end(), '-', '_');
    requests_by_kind_[k] =
        metrics_.AddCounter(name, "Router requests of this kind");
  }
  failed_ = metrics_.AddCounter("spatial_router_requests_failed_total",
                                "Router requests that returned an error");
  merge_ns_ = metrics_.AddHistogram(
      "spatial_router_merge_ns",
      "Scatter-gather wall time per request (submit to merged answer)");

  // Per-shard families, labelled shard="i". Reading Snapshot() is safe
  // while workers run (relaxed single-writer counters).
  metrics_.AddCollector([this](obs::ExpositionWriter& writer) {
    writer.Family("spatial_shard_queries_total",
                  "Queries executed per shard", obs::MetricType::kCounter);
    for (uint32_t s = 0; s < shards_->num_shards(); ++s) {
      const ServiceStats stats = shards_->shard(s).Snapshot();
      writer.Sample("spatial_shard_queries_total",
                    "shard=\"" + std::to_string(s) + "\",outcome=\"ok\"",
                    stats.queries_ok);
      writer.Sample("spatial_shard_queries_total",
                    "shard=\"" + std::to_string(s) + "\",outcome=\"failed\"",
                    stats.queries_failed);
    }
    writer.Family("spatial_shard_query_latency_ns",
                  "Per-shard query latency (worker wall time)",
                  obs::MetricType::kHistogram);
    for (uint32_t s = 0; s < shards_->num_shards(); ++s) {
      const ServiceStats stats = shards_->shard(s).Snapshot();
      writer.Histogram("spatial_shard_query_latency_ns",
                       "shard=\"" + std::to_string(s) + "\"", stats.latency);
    }
    writer.Family("spatial_shard_objects", "Objects initially loaded",
                  obs::MetricType::kGauge);
    for (uint32_t s = 0; s < shards_->num_shards(); ++s) {
      writer.Sample("spatial_shard_objects",
                    "shard=\"" + std::to_string(s) + "\"",
                    shards_->shard_size(s));
    }
  });
}

template <int D>
QueryResponse<D> ShardRouter<D>::Execute(const QueryRequest<D>& request) {
  requests_by_kind_[static_cast<int>(request.kind)]->Inc();
  QueryResponse<D> response;
  switch (request.kind) {
    case QueryKind::kKnn:
    case QueryKind::kConstrainedKnn:
    case QueryKind::kRange:
    case QueryKind::kTopK:
    case QueryKind::kBatchKnn:
      response = ScatterQuery(request);
      break;
    case QueryKind::kInsert:
      response = RouteInsert(request);
      break;
    case QueryKind::kDelete:
    case QueryKind::kCheckpoint:
      response = Broadcast(request);
      break;
  }
  if (!response.ok()) failed_->Inc();
  return response;
}

template <int D>
QueryResponse<D> ShardRouter<D>::ScatterQuery(const QueryRequest<D>& request) {
  const auto start = std::chrono::steady_clock::now();
  const uint32_t n = shards_->num_shards();

  // One bound per Execute() call, on the stack: concurrent router calls
  // never share a bound, so no reset/epoch protocol is needed. Streaming
  // applies to plain kNN only — the constrained search clips by region and
  // the incremental top-k scan does not take KnnOptions.
  SharedPruneBound bound;
  QueryRequest<D> scattered = request;
  if (options_.stream_bound && request.kind == QueryKind::kKnn) {
    scattered.knn.shared_bound = &bound;
  }

  std::vector<std::future<QueryResponse<D>>> futures;
  futures.reserve(n);
  for (uint32_t s = 0; s < n; ++s) {
    futures.push_back(shards_->shard(s).Submit(scattered));
  }

  std::vector<QueryResponse<D>> answers;
  answers.reserve(n);
  for (auto& f : futures) answers.push_back(f.get());

  QueryResponse<D> merged;
  for (const auto& a : answers) {
    if (!a.status.ok() && merged.status.ok()) merged.status = a.status;
    merged.stats.Add(a.stats);
    // The scatter runs shards concurrently: the round trip's critical path
    // is the slowest shard, so that is the latency we report.
    merged.latency_ns = std::max(merged.latency_ns, a.latency_ns);
  }
  if (!merged.status.ok()) {
    merge_ns_->Record(ElapsedNs(start));
    return merged;
  }

  switch (request.kind) {
    case QueryKind::kKnn:
    case QueryKind::kConstrainedKnn:
    case QueryKind::kTopK: {
      const uint32_t k = request.kind == QueryKind::kTopK ? request.top_k
                                                          : request.knn.k;
      for (const auto& a : answers) {
        merged.neighbors.insert(merged.neighbors.end(), a.neighbors.begin(),
                                a.neighbors.end());
      }
      std::sort(merged.neighbors.begin(), merged.neighbors.end(),
                NeighborLess);
      if (merged.neighbors.size() > k) merged.neighbors.resize(k);
      break;
    }
    case QueryKind::kRange: {
      // A single tree reports range hits in traversal order, which is a
      // tree-shape artifact; the router normalizes to ascending object id
      // so the merged answer is a pure function of the dataset.
      for (const auto& a : answers) {
        merged.entries.insert(merged.entries.end(), a.entries.begin(),
                              a.entries.end());
      }
      std::sort(merged.entries.begin(), merged.entries.end(),
                [](const Entry<D>& x, const Entry<D>& y) {
                  return x.id < y.id;
                });
      break;
    }
    case QueryKind::kBatchKnn: {
      const uint32_t k = request.knn.k;
      const size_t num_queries = request.batch_queries.size();
      std::vector<Neighbor> scratch;
      merged.batch_offsets.reserve(num_queries + 1);
      merged.batch_offsets.push_back(0);
      for (size_t q = 0; q < num_queries; ++q) {
        scratch.clear();
        for (const auto& a : answers) {
          const uint32_t lo = a.batch_offsets[q];
          const uint32_t hi = a.batch_offsets[q + 1];
          scratch.insert(scratch.end(), a.neighbors.begin() + lo,
                         a.neighbors.begin() + hi);
        }
        std::sort(scratch.begin(), scratch.end(), NeighborLess);
        if (scratch.size() > k) scratch.resize(k);
        merged.neighbors.insert(merged.neighbors.end(), scratch.begin(),
                                scratch.end());
        merged.batch_offsets.push_back(
            static_cast<uint32_t>(merged.neighbors.size()));
      }
      break;
    }
    default:
      break;
  }

  merge_ns_->Record(ElapsedNs(start));
  return merged;
}

template <int D>
QueryResponse<D> ShardRouter<D>::RouteInsert(const QueryRequest<D>& request) {
  const auto start = std::chrono::steady_clock::now();
  // Nearest initial tile by MINDIST, ties (e.g. the MBR overlaps several
  // tiles at distance 0) to the lowest index. Empty tiles — shards that
  // received no objects at build time — still win when every tile is
  // empty; then shard 0 takes the insert.
  uint32_t target = 0;
  double best = std::numeric_limits<double>::infinity();
  for (uint32_t s = 0; s < shards_->num_shards(); ++s) {
    const Rect<D>& tile = shards_->tile(s);
    if (tile.IsEmpty()) continue;
    const double d = MinDistSq<D>(tile, request.window);
    if (d < best) {
      best = d;
      target = s;
    }
  }
  QueryResponse<D> response = shards_->shard(target).Execute(request);
  merge_ns_->Record(ElapsedNs(start));
  return response;
}

template <int D>
QueryResponse<D> ShardRouter<D>::Broadcast(const QueryRequest<D>& request) {
  const auto start = std::chrono::steady_clock::now();
  const uint32_t n = shards_->num_shards();
  std::vector<std::future<QueryResponse<D>>> futures;
  futures.reserve(n);
  for (uint32_t s = 0; s < n; ++s) {
    futures.push_back(shards_->shard(s).Submit(request));
  }
  QueryResponse<D> merged;
  for (auto& f : futures) {
    QueryResponse<D> a = f.get();
    if (!a.status.ok() && merged.status.ok()) merged.status = a.status;
    merged.affected += a.affected;
    merged.lsn = std::max(merged.lsn, a.lsn);
    merged.latency_ns = std::max(merged.latency_ns, a.latency_ns);
  }
  merge_ns_->Record(ElapsedNs(start));
  return merged;
}

template class ShardRouter<2>;
template class ShardRouter<3>;

}  // namespace spatial
