#include "shard/shard_router.h"

#include <algorithm>
#include <chrono>
#include <future>
#include <limits>
#include <utility>
#include <vector>

#include "core/reverse_knn.h"
#include "core/shared_bound.h"
#include "core/skyline.h"
#include "geom/metrics.h"

namespace spatial {

namespace {

// The deterministic merge order: ascending squared distance, object id
// breaking ties. Shard answers arrive in shard order, so equal inputs
// always merge identically.
bool NeighborLess(const Neighbor& a, const Neighbor& b) {
  if (a.dist_sq != b.dist_sq) return a.dist_sq < b.dist_sq;
  return a.id < b.id;
}

uint64_t ElapsedNs(std::chrono::steady_clock::time_point start) {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - start)
          .count());
}

}  // namespace

template <int D>
ShardRouter<D>::ShardRouter(ShardSet<D>* shards, const Options& options)
    : shards_(shards), options_(options) {
  RegisterMetrics();
}

template <int D>
void ShardRouter<D>::RegisterMetrics() {
  for (int k = 0; k < kNumQueryKinds; ++k) {
    // Kind names like "top-k" carry hyphens, which are legal in label
    // values but not in Prometheus metric names — fold them to '_'.
    std::string name = std::string("spatial_router_requests_total_") +
                       QueryKindName(static_cast<QueryKind>(k));
    std::replace(name.begin(), name.end(), '-', '_');
    requests_by_kind_[k] =
        metrics_.AddCounter(name, "Router requests of this kind");
  }
  failed_ = metrics_.AddCounter("spatial_router_requests_failed_total",
                                "Router requests that returned an error");
  rknn_candidates_ = metrics_.AddCounter(
      "spatial_router_rknn_candidates_total",
      "Reverse-kNN candidates surviving the global sector re-selection");
  rknn_verify_rounds_ = metrics_.AddCounter(
      "spatial_router_rknn_verify_rounds_total",
      "Cross-shard kNN rounds issued to verify reverse-kNN candidates");
  merge_ns_ = metrics_.AddHistogram(
      "spatial_router_merge_ns",
      "Scatter-gather wall time per request (submit to merged answer)");

  // Per-shard families, labelled shard="i". Reading Snapshot() is safe
  // while workers run (relaxed single-writer counters).
  metrics_.AddCollector([this](obs::ExpositionWriter& writer) {
    writer.Family("spatial_shard_queries_total",
                  "Queries executed per shard", obs::MetricType::kCounter);
    for (uint32_t s = 0; s < shards_->num_shards(); ++s) {
      const ServiceStats stats = shards_->shard(s).Snapshot();
      writer.Sample("spatial_shard_queries_total",
                    "shard=\"" + std::to_string(s) + "\",outcome=\"ok\"",
                    stats.queries_ok);
      writer.Sample("spatial_shard_queries_total",
                    "shard=\"" + std::to_string(s) + "\",outcome=\"failed\"",
                    stats.queries_failed);
    }
    writer.Family("spatial_shard_query_latency_ns",
                  "Per-shard query latency (worker wall time)",
                  obs::MetricType::kHistogram);
    for (uint32_t s = 0; s < shards_->num_shards(); ++s) {
      const ServiceStats stats = shards_->shard(s).Snapshot();
      writer.Histogram("spatial_shard_query_latency_ns",
                       "shard=\"" + std::to_string(s) + "\"", stats.latency);
    }
    writer.Family("spatial_shard_objects", "Objects initially loaded",
                  obs::MetricType::kGauge);
    for (uint32_t s = 0; s < shards_->num_shards(); ++s) {
      writer.Sample("spatial_shard_objects",
                    "shard=\"" + std::to_string(s) + "\"",
                    shards_->shard_size(s));
    }
  });
}

template <int D>
QueryResponse<D> ShardRouter<D>::Execute(const QueryRequest<D>& request) {
  requests_by_kind_[static_cast<int>(request.kind)]->Inc();
  QueryResponse<D> response;
  switch (request.kind) {
    case QueryKind::kKnn:
    case QueryKind::kConstrainedKnn:
    case QueryKind::kRange:
    case QueryKind::kTopK:
    case QueryKind::kBatchKnn:
    case QueryKind::kNnSkyline:
    case QueryKind::kApproxKnn:
      response = ScatterQuery(request);
      break;
    case QueryKind::kReverseKnn:
      response = RouteReverseKnn(request);
      break;
    case QueryKind::kInsert:
      response = RouteInsert(request);
      break;
    case QueryKind::kDelete:
    case QueryKind::kCheckpoint:
      response = Broadcast(request);
      break;
  }
  if (!response.ok()) failed_->Inc();
  return response;
}

template <int D>
QueryResponse<D> ShardRouter<D>::ScatterQuery(const QueryRequest<D>& request) {
  const auto start = std::chrono::steady_clock::now();
  const uint32_t n = shards_->num_shards();

  // One bound per Execute() call, on the stack: concurrent router calls
  // never share a bound, so no reset/epoch protocol is needed. Streaming
  // applies to plain and approximate kNN — the constrained search clips by
  // region and the incremental top-k scan does not take KnnOptions. For
  // kApproxKnn the published bounds are exact (unrelaxed) local k-th
  // distances, so streaming tightens pruning without widening the
  // (1+epsilon) contract.
  SharedPruneBound bound;
  QueryRequest<D> scattered = request;
  if (options_.stream_bound && (request.kind == QueryKind::kKnn ||
                                request.kind == QueryKind::kApproxKnn)) {
    scattered.knn.shared_bound = &bound;
  }

  std::vector<std::future<QueryResponse<D>>> futures;
  futures.reserve(n);
  for (uint32_t s = 0; s < n; ++s) {
    futures.push_back(shards_->shard(s).Submit(scattered));
  }

  std::vector<QueryResponse<D>> answers;
  answers.reserve(n);
  for (auto& f : futures) answers.push_back(f.get());

  QueryResponse<D> merged;
  for (const auto& a : answers) {
    if (!a.status.ok() && merged.status.ok()) merged.status = a.status;
    merged.stats.Add(a.stats);
    // The scatter runs shards concurrently: the round trip's critical path
    // is the slowest shard, so that is the latency we report.
    merged.latency_ns = std::max(merged.latency_ns, a.latency_ns);
  }
  if (!merged.status.ok()) {
    merge_ns_->Record(ElapsedNs(start));
    return merged;
  }

  switch (request.kind) {
    case QueryKind::kKnn:
    case QueryKind::kConstrainedKnn:
    case QueryKind::kTopK:
    case QueryKind::kApproxKnn: {
      const uint32_t k = request.kind == QueryKind::kTopK ? request.top_k
                                                          : request.knn.k;
      for (const auto& a : answers) {
        merged.neighbors.insert(merged.neighbors.end(), a.neighbors.begin(),
                                a.neighbors.end());
      }
      std::sort(merged.neighbors.begin(), merged.neighbors.end(),
                NeighborLess);
      if (merged.neighbors.size() > k) merged.neighbors.resize(k);
      break;
    }
    case QueryKind::kRange: {
      // A single tree reports range hits in traversal order, which is a
      // tree-shape artifact; the router normalizes to ascending object id
      // so the merged answer is a pure function of the dataset.
      for (const auto& a : answers) {
        merged.entries.insert(merged.entries.end(), a.entries.begin(),
                              a.entries.end());
      }
      std::sort(merged.entries.begin(), merged.entries.end(),
                [](const Entry<D>& x, const Entry<D>& y) {
                  return x.id < y.id;
                });
      break;
    }
    case QueryKind::kBatchKnn: {
      const uint32_t k = request.knn.k;
      const size_t num_queries = request.batch_queries.size();
      std::vector<Neighbor> scratch;
      merged.batch_offsets.reserve(num_queries + 1);
      merged.batch_offsets.push_back(0);
      for (size_t q = 0; q < num_queries; ++q) {
        scratch.clear();
        for (const auto& a : answers) {
          const uint32_t lo = a.batch_offsets[q];
          const uint32_t hi = a.batch_offsets[q + 1];
          scratch.insert(scratch.end(), a.neighbors.begin() + lo,
                         a.neighbors.begin() + hi);
        }
        std::sort(scratch.begin(), scratch.end(), NeighborLess);
        if (scratch.size() > k) scratch.resize(k);
        merged.neighbors.insert(merged.neighbors.end(), scratch.begin(),
                                scratch.end());
        merged.batch_offsets.push_back(
            static_cast<uint32_t>(merged.neighbors.size()));
      }
      break;
    }
    case QueryKind::kNnSkyline: {
      // The global skyline is a subset of the union of shard skylines: a
      // global dominator of object o shares o's shard (where it already
      // eliminated o) or is itself undominated there and reaches the
      // union — either way o does not survive. Distance vectors are
      // recomputed with the canonical scalar expression (core/skyline.h),
      // bit-identical to the kernels the shards browsed with, so the
      // merged answer matches a single whole-dataset tree byte for byte.
      std::vector<Entry<D>> pool;
      for (const auto& a : answers) {
        pool.insert(pool.end(), a.entries.begin(), a.entries.end());
      }
      const size_t m = request.batch_queries.size();
      const Point<D>* sources = request.batch_queries.data();
      std::vector<double> dists(pool.size() * m);
      std::vector<double> sums(pool.size());
      for (size_t i = 0; i < pool.size(); ++i) {
        SkylineDistVector<D>(sources, m, pool[i].mbr, &dists[i * m]);
        double sum = 0.0;
        for (size_t j = 0; j < m; ++j) sum += dists[i * m + j];
        sums[i] = sum;
      }
      // Ascending (sum, id) is both the output order and a topological
      // order for dominance (a dominator's sum is strictly smaller), so
      // testing each entry against the already-kept prefix is exact.
      std::vector<size_t> order(pool.size());
      for (size_t i = 0; i < order.size(); ++i) order[i] = i;
      std::sort(order.begin(), order.end(), [&](size_t x, size_t y) {
        if (sums[x] != sums[y]) return sums[x] < sums[y];
        return pool[x].id < pool[y].id;
      });
      std::vector<size_t> kept;
      for (size_t idx : order) {
        bool dominated = false;
        for (size_t member : kept) {
          if (SkylineDominates(&dists[member * m], &dists[idx * m], m)) {
            dominated = true;
            break;
          }
        }
        if (!dominated) kept.push_back(idx);
      }
      merged.entries.reserve(kept.size());
      for (size_t idx : kept) merged.entries.push_back(pool[idx]);
      break;
    }
    default:
      break;
  }

  merge_ns_->Record(ElapsedNs(start));
  return merged;
}

template <int D>
QueryResponse<D> ShardRouter<D>::RouteReverseKnn(
    const QueryRequest<D>& request) {
  const auto start = std::chrono::steady_clock::now();
  const uint32_t n = shards_->num_shards();

  // Phase 1: every shard generates (but does not verify) its local sector
  // candidates. A local filter only ever drops objects that its own shard
  // proves cannot be reverse k-NN — more objects globally can only
  // strengthen that proof — so the union still contains every answer.
  QueryRequest<D> scattered = request;
  scattered.rknn_candidates_only = true;

  std::vector<std::future<QueryResponse<D>>> futures;
  futures.reserve(n);
  for (uint32_t s = 0; s < n; ++s) {
    futures.push_back(shards_->shard(s).Submit(scattered));
  }
  std::vector<QueryResponse<D>> answers;
  answers.reserve(n);
  for (auto& f : futures) answers.push_back(f.get());

  QueryResponse<D> merged;
  for (const auto& a : answers) {
    if (!a.status.ok() && merged.status.ok()) merged.status = a.status;
    merged.stats.Add(a.stats);
    merged.latency_ns = std::max(merged.latency_ns, a.latency_ns);
  }
  if (!merged.status.ok()) {
    merge_ns_->Record(ElapsedNs(start));
    return merged;
  }

  if constexpr (D != 2) {
    // Unreachable — every shard already answered kInvalidArgument above —
    // but keeps this instantiation from touching the planar-only filter.
    merged.status =
        Status::InvalidArgument("reverse-knn supports 2-D services only");
    merge_ns_->Record(ElapsedNs(start));
    return merged;
  } else {
    // Phase 2: re-run the sector selection globally. A shard's local
    // filter may keep objects that closer same-sector objects in *other*
    // shards eliminate, so the union is re-fed — in the ascending
    // (dist, id) order the filter requires — through a fresh filter.
    // Distances are recomputed with the scalar MINDIST, bit-identical to
    // the kernel keys the shards browsed with.
    struct Candidate {
      double dist_sq;
      Entry<2> entry;
    };
    std::vector<Candidate> pool;
    for (const auto& a : answers) {
      for (const auto& e : a.entries) {
        pool.push_back(Candidate{MinDistSq(request.query, e.mbr), e});
      }
    }
    std::sort(pool.begin(), pool.end(),
              [](const Candidate& x, const Candidate& y) {
                if (x.dist_sq != y.dist_sq) return x.dist_sq < y.dist_sq;
                return x.entry.id < y.entry.id;
              });
    ReverseKnnSectorFilter filter(request.query, request.knn.k);
    std::vector<Candidate> selected;
    for (const auto& c : pool) {
      if (filter.Closed(c.dist_sq)) break;
      if (filter.Offer(c.entry.mbr.Center(), c.dist_sq)) {
        selected.push_back(c);
      }
    }
    rknn_candidates_->Add(selected.size());

    if (request.rknn_candidates_only) {
      merged.entries.reserve(selected.size());
      for (const auto& c : selected) merged.entries.push_back(c.entry);
      merge_ns_->Record(ElapsedNs(start));
      return merged;
    }

    // Phase 3: verify each survivor with an exact cross-shard (k+1)-NN at
    // its location — the single-tree rule (core/reverse_knn.h), but the
    // neighbor list now spans every shard. Rounds run sequentially, so
    // their latencies add onto the candidate phase's.
    for (const auto& c : selected) {
      if (c.dist_sq == 0.0) {
        // Coincides with the query: unconditionally a reverse k-NN.
        merged.neighbors.push_back(Neighbor{c.entry.id, 0.0});
        continue;
      }
      const QueryRequest<D> verify =
          QueryRequest<D>::Knn(c.entry.mbr.Center(), request.knn.k + 1);
      QueryResponse<D> around = ScatterQuery(verify);
      rknn_verify_rounds_->Inc();
      if (!around.status.ok()) {
        merged.status = around.status;
        merge_ns_->Record(ElapsedNs(start));
        return merged;
      }
      merged.stats.Add(around.stats);
      merged.latency_ns += around.latency_ns;
      if (ReverseKnnQualifies(around.neighbors, c.entry.id, c.dist_sq,
                              request.knn.k)) {
        merged.neighbors.push_back(Neighbor{c.entry.id, c.dist_sq});
      }
    }
    std::sort(merged.neighbors.begin(), merged.neighbors.end(), NeighborLess);
    merge_ns_->Record(ElapsedNs(start));
    return merged;
  }
}

template <int D>
QueryResponse<D> ShardRouter<D>::RouteInsert(const QueryRequest<D>& request) {
  const auto start = std::chrono::steady_clock::now();
  // Nearest initial tile by MINDIST, ties (e.g. the MBR overlaps several
  // tiles at distance 0) to the lowest index. Empty tiles — shards that
  // received no objects at build time — still win when every tile is
  // empty; then shard 0 takes the insert.
  uint32_t target = 0;
  double best = std::numeric_limits<double>::infinity();
  for (uint32_t s = 0; s < shards_->num_shards(); ++s) {
    const Rect<D>& tile = shards_->tile(s);
    if (tile.IsEmpty()) continue;
    const double d = MinDistSq<D>(tile, request.window);
    if (d < best) {
      best = d;
      target = s;
    }
  }
  QueryResponse<D> response = shards_->shard(target).Execute(request);
  merge_ns_->Record(ElapsedNs(start));
  return response;
}

template <int D>
QueryResponse<D> ShardRouter<D>::Broadcast(const QueryRequest<D>& request) {
  const auto start = std::chrono::steady_clock::now();
  const uint32_t n = shards_->num_shards();
  std::vector<std::future<QueryResponse<D>>> futures;
  futures.reserve(n);
  for (uint32_t s = 0; s < n; ++s) {
    futures.push_back(shards_->shard(s).Submit(request));
  }
  QueryResponse<D> merged;
  for (auto& f : futures) {
    QueryResponse<D> a = f.get();
    if (!a.status.ok() && merged.status.ok()) merged.status = a.status;
    merged.affected += a.affected;
    merged.lsn = std::max(merged.lsn, a.lsn);
    merged.latency_ns = std::max(merged.latency_ns, a.latency_ns);
  }
  merge_ns_->Record(ElapsedNs(start));
  return merged;
}

template class ShardRouter<2>;
template class ShardRouter<3>;

}  // namespace spatial
