#include "shard/shard_set.h"

#include <utility>

namespace spatial {

namespace {

std::string ShardPath(const std::string& dir, uint32_t shard) {
  return dir + "/shard_" + std::to_string(shard) + ".sdb";
}

}  // namespace

template <int D>
Result<std::unique_ptr<ShardSet<D>>> ShardSet<D>::Build(
    std::vector<Entry<D>> items, const Options& options) {
  SPATIAL_RETURN_IF_ERROR(options.Validate());
  SPATIAL_RETURN_IF_ERROR(options.service.Validate());

  SPATIAL_ASSIGN_OR_RETURN(
      Partition<D> partition,
      PartitionStr<D>(std::move(items), options.num_shards));

  std::unique_ptr<ShardSet> set(new ShardSet(options));
  set->tiles_ = std::move(partition.tiles);
  set->sizes_.reserve(options.num_shards);
  for (const auto& shard : partition.shards) {
    set->sizes_.push_back(shard.size());
  }

  const bool file_backed = options.file_backed || options.serving;
  typename SpatialDb<D>::Options db_options;
  db_options.page_size = options.page_size;
  db_options.buffer_pages = options.buffer_pages;

  for (uint32_t s = 0; s < options.num_shards; ++s) {
    if (!file_backed) {
      SPATIAL_ASSIGN_OR_RETURN(SpatialDb<D> db,
                               SpatialDb<D>::CreateInMemory(db_options));
      SPATIAL_RETURN_IF_ERROR(
          db.BulkLoadData(std::move(partition.shards[s]), BulkLoadMethod::kStr));
      // Attach() workers read the raw disk, so dirty pages must be down.
      SPATIAL_RETURN_IF_ERROR(db.Flush());
      set->dbs_.push_back(std::make_unique<SpatialDb<D>>(std::move(db)));
      SPATIAL_ASSIGN_OR_RETURN(
          std::unique_ptr<QueryService<D>> service,
          QueryService<D>::Attach(*set->dbs_.back(), options.service));
      set->services_.push_back(std::move(service));
      continue;
    }

    const std::string path = ShardPath(options.dir, s);
    {
      SPATIAL_ASSIGN_OR_RETURN(SpatialDb<D> db,
                               SpatialDb<D>::CreateOnFile(path, db_options));
      SPATIAL_RETURN_IF_ERROR(
          db.BulkLoadData(std::move(partition.shards[s]), BulkLoadMethod::kStr));
      SPATIAL_RETURN_IF_ERROR(db.Close());
    }
    if (options.serving) {
      ServingOptions serving_options;
      serving_options.page_size = options.page_size;
      serving_options.buffer_pages = options.buffer_pages;
      SPATIAL_ASSIGN_OR_RETURN(
          std::unique_ptr<QueryService<D>> service,
          QueryService<D>::OpenServing(path, serving_options, options.service));
      set->services_.push_back(std::move(service));
    } else {
      SPATIAL_ASSIGN_OR_RETURN(
          std::unique_ptr<QueryService<D>> service,
          QueryService<D>::Open(path, options.page_size, options.service));
      set->services_.push_back(std::move(service));
    }
  }

  return set;
}

template class ShardSet<2>;
template class ShardSet<3>;

}  // namespace spatial
