#ifndef SPATIAL_SHARD_SHARD_ROUTER_H_
#define SPATIAL_SHARD_SHARD_ROUTER_H_

#include <cstdint>
#include <string>

#include "obs/metrics.h"
#include "service/request.h"
#include "shard/shard_set.h"

namespace spatial {

// Scatter-gather front end over a ShardSet. One Execute() call fans the
// request out to every relevant shard, waits for the per-shard answers,
// and merges them into a single QueryResponse that is bit-identical to
// running the same request against one tree holding the whole dataset
// (modulo distance ties at the k-th position — see docs/SHARDING.md).
//
// Routing:
//   * kKnn / kConstrainedKnn / kTopK / kBatchKnn / kApproxKnn — scatter to
//     all shards, merge by (dist_sq, id) truncated to k (per query for the
//     batch kind). The approximate merge keeps the epsilon contract: the
//     merged k-th distance never exceeds any shard's local k-th, and every
//     shard's answers individually satisfy r <= (1+eps) * t.
//   * kRange — scatter, merge by object id.
//   * kNnSkyline — scatter, union the per-shard skylines, re-apply the
//     dominance filter over the union (the global skyline is a subset of
//     the union: any global dominator either eliminated its victim inside
//     its own shard or survives into the union and eliminates it here).
//   * kReverseKnn — two-phase (RouteReverseKnn): shards generate sector
//     candidates only (rknn_candidates_only), the router re-runs the
//     sector selection over the union, then verifies each survivor with
//     an exact cross-shard (k+1)-NN — verification must consult the
//     *global* dataset, which no single shard holds.
//   * kInsert — route to the single shard whose initial tile is nearest
//     the new MBR (MINDIST, ties to the lowest shard index).
//   * kDelete / kCheckpoint — broadcast (a delete must reach whichever
//     shard holds the object; `affected` sums over shards).
//
// Bound streaming: for kKnn / kApproxKnn with Options::stream_bound, the
// router plants one SharedPruneBound (core/shared_bound.h) into every
// scattered copy's KnnOptions. Each shard publishes its local k-th
// distance as soon as its buffer fills and prunes against the tightest
// bound any shard has found, so laggard shards skip subtrees the global
// answer has already beaten. Published bounds are always exact (unrelaxed)
// local k-th distances, so the merged answer is unchanged for kKnn and the
// epsilon contract is preserved for kApproxKnn; E19 measures the pages
// saved.
//
// Thread-safe: Execute() may be called from any number of threads (the
// RPC server's connection threads do exactly that); all shared state is
// the shards' own MPMC queues and the router's lock-free instruments.
template <int D>
class ShardRouter {
 public:
  struct Options {
    bool stream_bound = true;
  };

  // `shards` must outlive the router.
  explicit ShardRouter(ShardSet<D>* shards, const Options& options = {});

  ShardRouter(const ShardRouter&) = delete;
  ShardRouter& operator=(const ShardRouter&) = delete;

  // Synchronous scatter-gather round trip.
  QueryResponse<D> Execute(const QueryRequest<D>& request);

  ShardSet<D>& shards() { return *shards_; }
  const Options& options() const { return options_; }

  // Router-level instruments (requests by kind, merge latency) plus a
  // collector emitting per-shard query/latency families labelled
  // shard="i". ScrapeMetrics() returns the full document; the per-shard
  // registries remain scrapable individually via shard(i).ScrapeMetrics().
  obs::MetricsRegistry& metrics() { return metrics_; }
  std::string ScrapeMetrics() const { return metrics_.ScrapeText(); }

 private:
  QueryResponse<D> ScatterQuery(const QueryRequest<D>& request);
  QueryResponse<D> RouteReverseKnn(const QueryRequest<D>& request);
  QueryResponse<D> RouteInsert(const QueryRequest<D>& request);
  QueryResponse<D> Broadcast(const QueryRequest<D>& request);
  void RegisterMetrics();

  ShardSet<D>* shards_;
  Options options_;
  obs::MetricsRegistry metrics_;
  obs::Counter* requests_by_kind_[kNumQueryKinds] = {};
  obs::Counter* failed_;
  obs::Counter* rknn_candidates_;     // survivors of the global re-selection
  obs::Counter* rknn_verify_rounds_;  // cross-shard verification kNNs issued
  obs::PowerHistogram* merge_ns_;
};

extern template class ShardRouter<2>;
extern template class ShardRouter<3>;

}  // namespace spatial

#endif  // SPATIAL_SHARD_SHARD_ROUTER_H_
