#ifndef SPATIAL_SHARD_SHARD_ROUTER_H_
#define SPATIAL_SHARD_SHARD_ROUTER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "obs/dist_trace.h"
#include "obs/metrics.h"
#include "obs/stat_counter.h"
#include "obs/trace.h"
#include "service/request.h"
#include "shard/shard_set.h"

namespace spatial {

// Scatter-gather front end over a ShardSet. One Execute() call fans the
// request out to every relevant shard, waits for the per-shard answers,
// and merges them into a single QueryResponse that is bit-identical to
// running the same request against one tree holding the whole dataset
// (modulo distance ties at the k-th position — see docs/SHARDING.md).
//
// Routing:
//   * kKnn / kConstrainedKnn / kTopK / kBatchKnn / kApproxKnn — scatter to
//     all shards, merge by (dist_sq, id) truncated to k (per query for the
//     batch kind). The approximate merge keeps the epsilon contract: the
//     merged k-th distance never exceeds any shard's local k-th, and every
//     shard's answers individually satisfy r <= (1+eps) * t.
//   * kRange — scatter, merge by object id.
//   * kNnSkyline — scatter, union the per-shard skylines, re-apply the
//     dominance filter over the union (the global skyline is a subset of
//     the union: any global dominator either eliminated its victim inside
//     its own shard or survives into the union and eliminates it here).
//   * kReverseKnn — two-phase (RouteReverseKnn): shards generate sector
//     candidates only (rknn_candidates_only), the router re-runs the
//     sector selection over the union, then verifies each survivor with
//     an exact cross-shard (k+1)-NN — verification must consult the
//     *global* dataset, which no single shard holds.
//   * kInsert — route to the single shard whose initial tile is nearest
//     the new MBR (MINDIST, ties to the lowest shard index).
//   * kDelete / kCheckpoint — broadcast (a delete must reach whichever
//     shard holds the object; `affected` sums over shards).
//
// Bound streaming: for kKnn / kApproxKnn with Options::stream_bound, the
// router plants one SharedPruneBound (core/shared_bound.h) into every
// scattered copy's KnnOptions. Each shard publishes its local k-th
// distance as soon as its buffer fills and prunes against the tightest
// bound any shard has found, so laggard shards skip subtrees the global
// answer has already beaten. Published bounds are always exact (unrelaxed)
// local k-th distances, so the merged answer is unchanged for kKnn and the
// epsilon contract is preserved for kApproxKnn; E19 measures the pages
// saved.
//
// Distributed tracing (docs/OBSERVABILITY.md "Distributed traces"): the
// router is the root of a trace. A scatter-family request is traced when
// it arrives carrying a sampled wire-v3 trace context (trace_id +
// trace_sampled, stamped by a remote caller) or when the router's own
// per-million sampling draw fires. Either way the router stamps the
// context into every scattered copy, each shard force-samples and returns
// its QueryTraceRecord in the response, and the router assembles one
// RouterTraceRecord — root spans (queue, scatter, merge), one ShardSpan
// per shard with the network-vs-execute split, and the straggler shard —
// into its DistTraceLog. Requests whose scatter-gather round trip crosses
// the slow threshold are captured in the same log even when unsampled
// (without the per-shard queue-wait / per-level detail only a sampled
// round trip carries).
//
// Thread-safe: Execute() may be called from any number of threads (the
// RPC server's connection threads do exactly that); all shared state is
// the shards' own MPMC queues, the router's lock-free instruments, and
// the trace log's preallocated mutexed ring.
template <int D>
class ShardRouter {
 public:
  struct Options {
    bool stream_bound = true;
    // Router-side trace sampling: 0 = off (requests still trace when the
    // caller propagated a sampled context), 10000 = 1%.
    uint32_t trace_sample_per_million = 0;
    // Router slow-query log (scatter-gather round trips at or above the
    // threshold are captured whether sampled or not).
    uint64_t slow_threshold_ns = 10'000'000;  // 10 ms
    size_t slow_log_capacity = 64;
    size_t sampled_log_capacity = 64;
  };

  // `shards` must outlive the router.
  explicit ShardRouter(ShardSet<D>* shards, const Options& options = {});

  ShardRouter(const ShardRouter&) = delete;
  ShardRouter& operator=(const ShardRouter&) = delete;

  // Synchronous scatter-gather round trip.
  QueryResponse<D> Execute(const QueryRequest<D>& request);

  ShardSet<D>& shards() { return *shards_; }
  const Options& options() const { return options_; }

  // Router-level instruments (requests by kind, merge latency) plus a
  // collector emitting per-shard query/latency families labelled
  // shard="i". ScrapeMetrics() returns the full document; the per-shard
  // registries remain scrapable individually via shard(i).ScrapeMetrics().
  obs::MetricsRegistry& metrics() { return metrics_; }
  std::string ScrapeMetrics() const { return metrics_.ScrapeText(); }

  // Assembled cross-shard traces and router-slow captures (slow ring +
  // reservoir; DumpJson backs the kDumpSlowLog admin frame).
  const obs::DistTraceLog& trace_log() const { return trace_log_; }

 private:
  QueryResponse<D> ScatterQuery(const QueryRequest<D>& request);
  QueryResponse<D> RouteReverseKnn(const QueryRequest<D>& request);
  QueryResponse<D> RouteInsert(const QueryRequest<D>& request);
  QueryResponse<D> Broadcast(const QueryRequest<D>& request);
  void RegisterMetrics();
  // Builds and records the RouterTraceRecord for one scatter round trip.
  // `completed_ns` holds per-shard router-observed completion times
  // (null when the request was not sampled).
  void RecordScatterTrace(const QueryRequest<D>& request, bool sampled,
                          uint64_t trace_id, uint64_t root_span_id,
                          const std::vector<QueryResponse<D>>& answers,
                          const uint64_t* completed_ns, uint64_t scatter_ns,
                          uint64_t total_ns, const QueryStats& merged_stats);

  ShardSet<D>* shards_;
  Options options_;
  obs::MetricsRegistry metrics_;
  obs::DistTraceLog trace_log_;
  // Multi-writer cells exposed as one spatial_router_requests_total
  // family labelled kind="..." by a scrape-time collector.
  obs::StatCounter requests_by_kind_[kNumQueryKinds];
  obs::Counter* failed_;
  obs::Counter* rknn_candidates_;     // survivors of the global re-selection
  obs::Counter* rknn_verify_rounds_;  // cross-shard verification kNNs issued
  obs::Counter* traces_assembled_;    // sampled cross-shard traces built
  obs::PowerHistogram* merge_ns_;
};

extern template class ShardRouter<2>;
extern template class ShardRouter<3>;

}  // namespace spatial

#endif  // SPATIAL_SHARD_SHARD_ROUTER_H_
