#ifndef SPATIAL_SHARD_PARTITIONER_H_
#define SPATIAL_SHARD_PARTITIONER_H_

#include <cstdint>
#include <vector>

#include "common/result.h"
#include "geom/rect.h"
#include "rtree/entry.h"

namespace spatial {

// The output of spatial partitioning: entry `shards[i]` holds shard i's
// objects and `tiles[i]` their bounding rectangle (Rect::Empty() for a
// shard that received no objects — possible only when the dataset holds
// fewer objects than shards). Shard contents are disjoint and their union
// is the input.
template <int D>
struct Partition {
  std::vector<std::vector<Entry<D>>> shards;
  std::vector<Rect<D>> tiles;

  uint32_t num_shards() const { return static_cast<uint32_t>(shards.size()); }
};

// Carves `items` into `num_shards` spatially coherent tiles using the same
// Sort-Tile-Recursive ordering the bulk loader packs nodes with
// (rtree/str_sort.h, tile capacity = ceil(n / num_shards)), then slices the
// ordered run into contiguous chunks spread evenly — every shard gets
// floor(n / num_shards) or one more, mirroring the loader's PackLevel
// spread. Spatial locality is what makes the shared prune bound effective:
// a kNN query's true neighbors cluster in one or two tiles, whose k-th
// distance then prunes the remaining shards (docs/SHARDING.md).
//
// Deterministic: equal inputs produce equal partitions (the STR sort is a
// total order on (center, id) ties aside, and slicing is positional).
template <int D>
Result<Partition<D>> PartitionStr(std::vector<Entry<D>> items,
                                  uint32_t num_shards);

extern template Result<Partition<2>> PartitionStr<2>(std::vector<Entry<2>>,
                                                     uint32_t);
extern template Result<Partition<3>> PartitionStr<3>(std::vector<Entry<3>>,
                                                     uint32_t);

}  // namespace spatial

#endif  // SPATIAL_SHARD_PARTITIONER_H_
