#include "bench_util/table.h"

#include <algorithm>
#include <cstdio>

#include "common/macros.h"

namespace spatial {

Table::Table(std::vector<std::string> columns)
    : columns_(std::move(columns)) {
  SPATIAL_CHECK(!columns_.empty());
}

void Table::AddRow(std::vector<std::string> cells) {
  SPATIAL_CHECK(cells.size() == columns_.size());
  rows_.push_back(std::move(cells));
}

void Table::Print(std::ostream& os) const {
  std::vector<size_t> widths(columns_.size());
  for (size_t c = 0; c < columns_.size(); ++c) {
    widths[c] = columns_[c].size();
    for (const auto& row : rows_) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& cells) {
    for (size_t c = 0; c < cells.size(); ++c) {
      os << (c == 0 ? "" : "  ");
      // Right-align everything; headers read fine either way.
      os << std::string(widths[c] - cells[c].size(), ' ') << cells[c];
    }
    os << '\n';
  };
  print_row(columns_);
  size_t total = 0;
  for (size_t c = 0; c < widths.size(); ++c) {
    total += widths[c] + (c == 0 ? 0 : 2);
  }
  os << std::string(total, '-') << '\n';
  for (const auto& row : rows_) print_row(row);
}

void Table::PrintCsv(std::ostream& os) const {
  auto print_row = [&](const std::vector<std::string>& cells) {
    for (size_t c = 0; c < cells.size(); ++c) {
      os << (c == 0 ? "" : ",") << cells[c];
    }
    os << '\n';
  };
  print_row(columns_);
  for (const auto& row : rows_) print_row(row);
}

std::string FmtInt(uint64_t v) { return std::to_string(v); }

std::string FmtDouble(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return std::string(buf);
}

}  // namespace spatial
