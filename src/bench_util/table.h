#ifndef SPATIAL_BENCH_UTIL_TABLE_H_
#define SPATIAL_BENCH_UTIL_TABLE_H_

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

namespace spatial {

// Minimal fixed-width table printer for the experiment binaries: each
// experiment prints the same rows/series the paper reports, plus a CSV
// block for plotting.
class Table {
 public:
  explicit Table(std::vector<std::string> columns);

  void AddRow(std::vector<std::string> cells);

  // Aligned human-readable rendering.
  void Print(std::ostream& os) const;

  // Machine-readable rendering (comma-separated, header first).
  void PrintCsv(std::ostream& os) const;

  size_t num_rows() const { return rows_.size(); }

 private:
  std::vector<std::string> columns_;
  std::vector<std::vector<std::string>> rows_;
};

// Numeric formatting helpers.
std::string FmtInt(uint64_t v);
std::string FmtDouble(double v, int precision);

}  // namespace spatial

#endif  // SPATIAL_BENCH_UTIL_TABLE_H_
