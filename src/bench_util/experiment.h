#ifndef SPATIAL_BENCH_UTIL_EXPERIMENT_H_
#define SPATIAL_BENCH_UTIL_EXPERIMENT_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "common/result.h"
#include "common/stats.h"
#include "core/knn.h"
#include "rtree/bulk_load.h"
#include "rtree/rtree.h"
#include "storage/buffer_pool.h"
#include "storage/disk_manager.h"

namespace spatial {

// How the experiment's index is constructed.
enum class BuildMethod {
  kInsertLinear,     // tuple-at-a-time inserts, Guttman linear split
  kInsertQuadratic,  // tuple-at-a-time inserts, Guttman quadratic split
  kInsertRStar,      // tuple-at-a-time inserts, R* split + reinsertion
  kBulkStr,          // packed, Sort-Tile-Recursive
  kBulkHilbert,      // packed, Hilbert curve
  kBulkMorton,       // packed, Z-order curve
};

const char* BuildMethodName(BuildMethod method);

// A self-contained index: simulated disk, buffer pool, and the tree.
// Move-only; keeps the storage alive for the tree's lifetime.
struct BuiltTree {
  std::unique_ptr<DiskManager> disk;
  std::unique_ptr<BufferPool> pool;
  std::optional<RTree<2>> tree;
};

// Builds a 2-D index over `dataset` on a fresh simulated disk. The paper's
// experiment configuration is page_size = 1024 (mid-1990s pages) and a
// buffer large enough to hold hot upper levels.
Result<BuiltTree> BuildTree2D(const std::vector<Entry<2>>& dataset,
                              BuildMethod method, uint32_t page_size,
                              uint32_t buffer_pages);

// Aggregates of one batch of k-NN queries.
struct KnnBatchStats {
  RunningStat pages;           // nodes (pages) visited per query
  RunningStat leaf_pages;
  RunningStat internal_pages;
  RunningStat objects;         // objects examined per query
  RunningStat dist_comps;      // distance computations per query
  RunningStat pruned_s1;
  RunningStat pruned_s3;
  RunningStat wall_micros;     // wall-clock per query
  QueryStats totals;           // summed raw counters
};

// Runs the paper's branch-and-bound k-NN for every query point and
// aggregates the per-query counters.
Result<KnnBatchStats> RunKnnBatch(const RTree<2>& tree,
                                  const std::vector<Point<2>>& queries,
                                  const KnnOptions& options);

}  // namespace spatial

#endif  // SPATIAL_BENCH_UTIL_EXPERIMENT_H_
