#include "bench_util/experiment.h"

#include <chrono>

#include "common/macros.h"

namespace spatial {

const char* BuildMethodName(BuildMethod method) {
  switch (method) {
    case BuildMethod::kInsertLinear:
      return "insert-linear";
    case BuildMethod::kInsertQuadratic:
      return "insert-quadratic";
    case BuildMethod::kInsertRStar:
      return "insert-rstar";
    case BuildMethod::kBulkStr:
      return "bulk-str";
    case BuildMethod::kBulkHilbert:
      return "bulk-hilbert";
    case BuildMethod::kBulkMorton:
      return "bulk-morton";
  }
  return "unknown";
}

Result<BuiltTree> BuildTree2D(const std::vector<Entry<2>>& dataset,
                              BuildMethod method, uint32_t page_size,
                              uint32_t buffer_pages) {
  BuiltTree built;
  built.disk = std::make_unique<DiskManager>(page_size);
  built.pool = std::make_unique<BufferPool>(built.disk.get(), buffer_pages);

  RTreeOptions options;
  switch (method) {
    case BuildMethod::kInsertLinear:
      options.split = SplitAlgorithm::kLinear;
      break;
    case BuildMethod::kInsertQuadratic:
      options.split = SplitAlgorithm::kQuadratic;
      break;
    case BuildMethod::kInsertRStar:
      options.split = SplitAlgorithm::kRStar;
      break;
    case BuildMethod::kBulkStr:
    case BuildMethod::kBulkHilbert:
    case BuildMethod::kBulkMorton:
      options.split = SplitAlgorithm::kQuadratic;  // for later inserts
      break;
  }

  switch (method) {
    case BuildMethod::kInsertLinear:
    case BuildMethod::kInsertQuadratic:
    case BuildMethod::kInsertRStar: {
      SPATIAL_ASSIGN_OR_RETURN(RTree<2> tree,
                               RTree<2>::Create(built.pool.get(), options));
      built.tree.emplace(std::move(tree));
      for (const Entry<2>& e : dataset) {
        SPATIAL_RETURN_IF_ERROR(built.tree->Insert(e.mbr, e.id));
      }
      break;
    }
    case BuildMethod::kBulkStr:
    case BuildMethod::kBulkHilbert:
    case BuildMethod::kBulkMorton: {
      BulkLoadMethod bulk = BulkLoadMethod::kStr;
      if (method == BuildMethod::kBulkHilbert) {
        bulk = BulkLoadMethod::kHilbert;
      } else if (method == BuildMethod::kBulkMorton) {
        bulk = BulkLoadMethod::kMorton;
      }
      SPATIAL_ASSIGN_OR_RETURN(
          RTree<2> tree,
          BulkLoad<2>(built.pool.get(), options, dataset, bulk));
      built.tree.emplace(std::move(tree));
      break;
    }
  }
  // Build traffic should not pollute query-phase counters.
  built.pool->ResetStats();
  built.disk->ResetStats();
  return built;
}

Result<KnnBatchStats> RunKnnBatch(const RTree<2>& tree,
                                  const std::vector<Point<2>>& queries,
                                  const KnnOptions& options) {
  KnnBatchStats batch;
  for (const Point<2>& q : queries) {
    QueryStats stats;
    const auto start = std::chrono::steady_clock::now();
    SPATIAL_ASSIGN_OR_RETURN(std::vector<Neighbor> result,
                             KnnSearch<2>(tree, q, options, &stats));
    const auto stop = std::chrono::steady_clock::now();
    (void)result;
    const double micros =
        std::chrono::duration<double, std::micro>(stop - start).count();
    batch.pages.Add(static_cast<double>(stats.nodes_visited));
    batch.leaf_pages.Add(static_cast<double>(stats.leaf_nodes_visited));
    batch.internal_pages.Add(
        static_cast<double>(stats.internal_nodes_visited));
    batch.objects.Add(static_cast<double>(stats.objects_examined));
    batch.dist_comps.Add(static_cast<double>(stats.distance_computations));
    batch.pruned_s1.Add(static_cast<double>(stats.pruned_s1));
    batch.pruned_s3.Add(static_cast<double>(stats.pruned_s3));
    batch.wall_micros.Add(micros);
    batch.totals.Add(stats);
  }
  return batch;
}

}  // namespace spatial
