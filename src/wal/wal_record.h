#ifndef SPATIAL_WAL_WAL_RECORD_H_
#define SPATIAL_WAL_WAL_RECORD_H_

#include <cstdint>
#include <string>

#include "common/result.h"
#include "common/status.h"

namespace spatial {

// One logical operation in the write-ahead log.
//
// On-disk framing (all integers little-endian, the only byte order this
// testbed targets):
//
//   [u32 payload_len][u32 crc32(payload)][payload]
//
// payload layout (payload_len = 32 + 16*dim bytes):
//
//   off  0  u8   type         (WalRecordType)
//   off  1  u8   dim          (0 for kCheckpoint, else 2 or 3)
//   off  2  u8x6 reserved     (zero)
//   off  8  u64  lsn
//   off 16  u64  object_id    (user id of the indexed object; 0 for
//                              kCheckpoint)
//   off 24  u64  epoch        (publishing epoch the op was applied in;
//                              diagnostic only — replay recomputes epochs)
//   off 32  f64 x dim  rect lo
//   ...     f64 x dim  rect hi
//
// The CRC covers the payload only; the length prefix is validated by range
// (a corrupt length either fails the bound check or lands the CRC check on
// garbage). A record is the unit of atomicity: replay accepts a record iff
// its full frame is present and the CRC matches, so a torn final write is
// indistinguishable from "record never written" — exactly the semantics
// group commit needs.
enum class WalRecordType : uint8_t {
  kInsert = 1,
  kDelete = 2,
  // Marker stamped at the head of each post-checkpoint segment; carries the
  // checkpoint's LSN. Replay skips it (state comes from the superblock).
  kCheckpoint = 3,
};

inline constexpr uint8_t kWalMaxDim = 3;
inline constexpr uint32_t kWalHeaderBytes = 8;  // len + crc

struct WalRecord {
  WalRecordType type = WalRecordType::kInsert;
  uint8_t dim = 0;
  uint64_t lsn = 0;
  uint64_t object_id = 0;
  uint64_t epoch = 0;
  double lo[kWalMaxDim] = {0, 0, 0};
  double hi[kWalMaxDim] = {0, 0, 0};
};

inline constexpr uint32_t WalPayloadSize(uint8_t dim) {
  return 32 + 16u * dim;
}

// Appends the framed record ([len][crc][payload]) to `out`.
void AppendWalRecord(const WalRecord& rec, std::string* out);

// Decodes one framed record starting at data[0]. `size` is the number of
// bytes available. On success stores the record and its total framed size.
// Returns:
//   OK          — record decoded, *frame_size set,
//   OutOfRange  — the buffer ends before the frame does (torn tail),
//   Corruption  — CRC mismatch or nonsensical length/type/dim.
Status DecodeWalRecord(const char* data, size_t size, WalRecord* out,
                       size_t* frame_size);

}  // namespace spatial

#endif  // SPATIAL_WAL_WAL_RECORD_H_
