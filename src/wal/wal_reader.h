#ifndef SPATIAL_WAL_WAL_READER_H_
#define SPATIAL_WAL_WAL_READER_H_

#include <cstdint>
#include <string>

#include "common/result.h"
#include "common/status.h"
#include "wal/wal_record.h"

namespace spatial {

// Sequential replay over the segment chain starting at `start_seq` (the
// seq the superblock recorded at its last checkpoint). Semantics:
//
//   * Segments are read in seq order; a missing next segment is the clean
//     end of the log.
//   * A torn or CRC-failing record in the LAST segment ends replay cleanly
//     at the previous record — that tail was never acknowledged, by the
//     commit protocol (fsync precedes ack).
//   * The same damage in a NON-last segment is real corruption (fsynced
//     data changed under us, or segments were tampered with) and fails
//     loudly rather than silently dropping acknowledged writes.
//
// A missing START segment is also a clean empty log: it means the crash
// hit checkpoint between superblock publication and segment creation —
// impossible in the shipped ordering (rotate before superblock write), but
// cheap to tolerate.
class WalReplayIterator {
 public:
  static Result<WalReplayIterator> Open(const std::string& prefix,
                                        uint64_t start_seq);

  // Advances to the next record. Returns true and fills `out`, or false at
  // the (clean) end of the log, or Corruption for mid-log damage.
  Result<bool> Next(WalRecord* out);

  uint64_t records_read() const { return records_read_; }
  uint64_t segments_read() const { return segments_read_; }
  // True if replay ended by discarding a damaged tail rather than at a
  // clean segment boundary.
  bool tail_torn() const { return tail_torn_; }

  // Meaningful only after Next() has returned false (log drained).
  //
  // The seq of the segment holding the damaged tail, and the number of
  // file bytes (header included) that decoded cleanly before the damage.
  // 0 keep-bytes means the segment's own header was torn — the whole file
  // is garbage. Recovery MUST repair the torn segment (truncate to the
  // keep-bytes, or unlink it when 0 — see WalWriter::TruncateSegment)
  // before creating any later segment: once a successor exists, the
  // damaged record would read as mid-log corruption, not a clean tail.
  uint64_t torn_seq() const { return seq_; }
  uint64_t torn_keep_bytes() const { return torn_keep_bytes_; }

  // First seq the writer may (re)create without destroying replayed data:
  // past the torn segment when its prefix is kept, else the first missing
  // (or fully-garbage) seq.
  uint64_t next_seq() const {
    return (tail_torn_ && torn_keep_bytes_ > 0) ? seq_ + 1 : seq_;
  }

 private:
  WalReplayIterator(std::string prefix, uint64_t start_seq)
      : prefix_(std::move(prefix)), seq_(start_seq) {}

  // Loads segment `seq_` into buffer_. Returns true if the segment exists
  // and has a valid header; false if it does not exist. A segment that
  // exists but has a short/invalid header counts as a torn tail (header
  // write crashed) unless a later segment exists.
  Result<bool> LoadSegment();
  static bool SegmentExists(const std::string& prefix, uint64_t seq);

  std::string prefix_;
  uint64_t seq_ = 0;
  bool loaded_ = false;
  bool done_ = false;
  bool tail_torn_ = false;
  std::string buffer_;  // current segment bytes past the header
  size_t offset_ = 0;
  uint64_t torn_keep_bytes_ = 0;
  uint64_t records_read_ = 0;
  uint64_t segments_read_ = 0;
};

}  // namespace spatial

#endif  // SPATIAL_WAL_WAL_READER_H_
