#include "wal/wal_record.h"

#include <cstring>

#include "common/crc32.h"
#include "common/macros.h"

namespace spatial {

namespace {

void PutU32(std::string* out, uint32_t v) {
  char buf[4];
  std::memcpy(buf, &v, 4);
  out->append(buf, 4);
}

void PutU64(std::string* out, uint64_t v) {
  char buf[8];
  std::memcpy(buf, &v, 8);
  out->append(buf, 8);
}

void PutF64(std::string* out, double v) {
  char buf[8];
  std::memcpy(buf, &v, 8);
  out->append(buf, 8);
}

uint32_t GetU32(const char* p) {
  uint32_t v;
  std::memcpy(&v, p, 4);
  return v;
}

uint64_t GetU64(const char* p) {
  uint64_t v;
  std::memcpy(&v, p, 8);
  return v;
}

double GetF64(const char* p) {
  double v;
  std::memcpy(&v, p, 8);
  return v;
}

}  // namespace

void AppendWalRecord(const WalRecord& rec, std::string* out) {
  SPATIAL_CHECK(rec.dim <= kWalMaxDim);
  const uint32_t payload_len = WalPayloadSize(rec.dim);

  std::string payload;
  payload.reserve(payload_len);
  payload.push_back(static_cast<char>(rec.type));
  payload.push_back(static_cast<char>(rec.dim));
  payload.append(6, '\0');
  PutU64(&payload, rec.lsn);
  PutU64(&payload, rec.object_id);
  PutU64(&payload, rec.epoch);
  for (uint8_t d = 0; d < rec.dim; ++d) PutF64(&payload, rec.lo[d]);
  for (uint8_t d = 0; d < rec.dim; ++d) PutF64(&payload, rec.hi[d]);
  SPATIAL_CHECK(payload.size() == payload_len);

  PutU32(out, payload_len);
  PutU32(out, Crc32(payload.data(), payload.size()));
  out->append(payload);
}

Status DecodeWalRecord(const char* data, size_t size, WalRecord* out,
                       size_t* frame_size) {
  if (size < kWalHeaderBytes) {
    return Status::OutOfRange("wal record: truncated header");
  }
  const uint32_t payload_len = GetU32(data);
  const uint32_t crc = GetU32(data + 4);
  // Length sanity before trusting it: payload sizes are a small closed set.
  if (payload_len < WalPayloadSize(0) ||
      payload_len > WalPayloadSize(kWalMaxDim)) {
    return Status::Corruption("wal record: implausible payload length " +
                              std::to_string(payload_len));
  }
  if (size < kWalHeaderBytes + payload_len) {
    return Status::OutOfRange("wal record: truncated payload");
  }
  const char* payload = data + kWalHeaderBytes;
  if (Crc32(payload, payload_len) != crc) {
    return Status::Corruption("wal record: checksum mismatch");
  }

  const uint8_t type = static_cast<uint8_t>(payload[0]);
  const uint8_t dim = static_cast<uint8_t>(payload[1]);
  if (type < static_cast<uint8_t>(WalRecordType::kInsert) ||
      type > static_cast<uint8_t>(WalRecordType::kCheckpoint)) {
    return Status::Corruption("wal record: unknown type " +
                              std::to_string(type));
  }
  if (dim > kWalMaxDim || WalPayloadSize(dim) != payload_len) {
    return Status::Corruption("wal record: dimension/length mismatch");
  }

  out->type = static_cast<WalRecordType>(type);
  out->dim = dim;
  out->lsn = GetU64(payload + 8);
  out->object_id = GetU64(payload + 16);
  out->epoch = GetU64(payload + 24);
  for (uint8_t d = 0; d < dim; ++d) {
    out->lo[d] = GetF64(payload + 32 + 8 * d);
    out->hi[d] = GetF64(payload + 32 + 8 * (dim + d));
  }
  *frame_size = kWalHeaderBytes + payload_len;
  return Status::OK();
}

}  // namespace spatial
