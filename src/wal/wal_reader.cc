#include "wal/wal_reader.h"

#include <cstdio>
#include <cstring>
#include <utility>

#include "common/macros.h"
#include "wal/wal_writer.h"

namespace spatial {

Result<WalReplayIterator> WalReplayIterator::Open(const std::string& prefix,
                                                  uint64_t start_seq) {
  if (start_seq == 0) {
    return Status::InvalidArgument("wal: replay seq must be >= 1");
  }
  return WalReplayIterator(prefix, start_seq);
}

bool WalReplayIterator::SegmentExists(const std::string& prefix,
                                      uint64_t seq) {
  std::FILE* f = std::fopen(WalWriter::SegmentPath(prefix, seq).c_str(), "rb");
  if (f == nullptr) return false;
  std::fclose(f);
  return true;
}

Result<bool> WalReplayIterator::LoadSegment() {
  const std::string path = WalWriter::SegmentPath(prefix_, seq_);
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return false;

  std::string contents;
  char chunk[4096];
  size_t n;
  while ((n = std::fread(chunk, 1, sizeof(chunk), f)) > 0) {
    contents.append(chunk, n);
  }
  std::fclose(f);

  // Validate the header. A short or garbled header means the segment's
  // very first durable write crashed: a torn tail if this is the newest
  // segment, corruption otherwise.
  bool header_ok = contents.size() >= kWalSegmentHeaderBytes;
  if (header_ok) {
    uint32_t magic, version;
    uint64_t seq;
    std::memcpy(&magic, contents.data(), 4);
    std::memcpy(&version, contents.data() + 4, 4);
    std::memcpy(&seq, contents.data() + 8, 8);
    header_ok =
        magic == kWalSegmentMagic && version == kWalSegmentVersion &&
        seq == seq_;
  }
  if (!header_ok) {
    if (SegmentExists(prefix_, seq_ + 1)) {
      return Status::Corruption("wal: damaged header in non-last segment " +
                                path);
    }
    tail_torn_ = true;
    torn_keep_bytes_ = 0;  // even the header is garbage: unlink on repair
    done_ = true;
    return true;  // "loaded" an empty tail
  }

  buffer_ = contents.substr(kWalSegmentHeaderBytes);
  offset_ = 0;
  loaded_ = true;
  ++segments_read_;
  return true;
}

Result<bool> WalReplayIterator::Next(WalRecord* out) {
  while (!done_) {
    if (!loaded_) {
      SPATIAL_ASSIGN_OR_RETURN(const bool exists, LoadSegment());
      if (!exists) {
        done_ = true;
        break;
      }
      continue;  // re-check done_ (torn header sets it)
    }
    if (offset_ >= buffer_.size()) {
      // Clean end of this segment: follow the chain.
      loaded_ = false;
      ++seq_;
      continue;
    }
    size_t frame_size = 0;
    const Status st = DecodeWalRecord(buffer_.data() + offset_,
                                      buffer_.size() - offset_, out,
                                      &frame_size);
    if (st.ok()) {
      offset_ += frame_size;
      ++records_read_;
      return true;
    }
    // Damaged record: discardable tail only in the newest segment.
    if (SegmentExists(prefix_, seq_ + 1)) {
      return Status::Corruption("wal: damaged record mid-log in segment " +
                                std::to_string(seq_) + ": " + st.message());
    }
    tail_torn_ = true;
    torn_keep_bytes_ = kWalSegmentHeaderBytes + offset_;
    done_ = true;
  }
  return false;
}

}  // namespace spatial
