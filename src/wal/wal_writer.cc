#include "wal/wal_writer.h"

#include <cerrno>
#include <chrono>
#include <cstring>
#include <utility>

#include "common/macros.h"

#if defined(__unix__) || defined(__APPLE__)
#define SPATIAL_WAL_HAVE_FSYNC 1
#include <unistd.h>
#endif

namespace spatial {

std::string WalWriter::SegmentPath(const std::string& prefix, uint64_t seq) {
  return prefix + ".wal." + std::to_string(seq);
}

Result<WalWriter> WalWriter::Open(const std::string& prefix, uint64_t seq,
                                  const WalOptions& options,
                                  FaultInjector* injector) {
  if (seq == 0) {
    return Status::InvalidArgument("wal: segment seq must be >= 1");
  }
  WalWriter writer(prefix, options, injector);
  SPATIAL_RETURN_IF_ERROR(writer.StartSegment(seq));
  return writer;
}

WalWriter::WalWriter(WalWriter&& other) noexcept { *this = std::move(other); }

WalWriter& WalWriter::operator=(WalWriter&& other) noexcept {
  if (this != &other) {
    CloseFile();
    prefix_ = std::move(other.prefix_);
    options_ = other.options_;
    injector_ = other.injector_;
    seq_ = other.seq_;
    file_ = other.file_;
    fd_ = other.fd_;
    segment_file_bytes_ = other.segment_file_bytes_;
    commits_ = other.commits_;
    pending_records_ = other.pending_records_;
    pending_ = std::move(other.pending_);
    metrics_ = other.metrics_;
    other.file_ = nullptr;
    other.fd_ = -1;
  }
  return *this;
}

WalWriter::~WalWriter() { CloseFile(); }

void WalWriter::CloseFile() {
  if (file_ != nullptr) {
    std::fclose(file_);
    file_ = nullptr;
    fd_ = -1;
  }
}

Status WalWriter::StartSegment(uint64_t seq) {
  CloseFile();
  const std::string path = SegmentPath(prefix_, seq);
  file_ = std::fopen(path.c_str(), "wb");
  if (file_ == nullptr) {
    return Status::Internal("wal: cannot create segment " + path);
  }
  std::setvbuf(file_, nullptr, _IONBF, 0);
#if defined(SPATIAL_WAL_HAVE_FSYNC)
  fd_ = fileno(file_);
#endif
  seq_ = seq;
  segment_file_bytes_ = 0;

  char header[kWalSegmentHeaderBytes];
  std::memcpy(header, &kWalSegmentMagic, 4);
  std::memcpy(header + 4, &kWalSegmentVersion, 4);
  std::memcpy(header + 8, &seq, 8);
  SPATIAL_RETURN_IF_ERROR(DurableWrite(header, sizeof(header)));
  return DurableSync();
}

Status WalWriter::Append(const WalRecord& rec) {
  if (file_ == nullptr) {
    return Status::Internal("wal: writer is closed");
  }
  AppendWalRecord(rec, &pending_);
  ++pending_records_;
  return Status::OK();
}

Status WalWriter::Commit() {
  if (pending_.empty()) return Status::OK();
  if (file_ == nullptr) {
    return Status::Internal("wal: writer is closed");
  }
  const uint64_t batch_bytes = pending_.size();
  const uint64_t batch_records = pending_records_;
  SPATIAL_RETURN_IF_ERROR(DurableWrite(pending_.data(), pending_.size()));
  if (metrics_ != nullptr) {
    const auto sync_start = std::chrono::steady_clock::now();
    SPATIAL_RETURN_IF_ERROR(DurableSync());
    metrics_->fsync_ns.Record(static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - sync_start)
            .count()));
    metrics_->commit_records.Record(batch_records);
    metrics_->commit_bytes.Record(batch_bytes);
  } else {
    SPATIAL_RETURN_IF_ERROR(DurableSync());
  }
  segment_file_bytes_ += pending_.size();
  pending_.clear();
  pending_records_ = 0;
  ++commits_;
  return Status::OK();
}

Result<uint64_t> WalWriter::Rotate() {
  if (!pending_.empty()) {
    return Status::InvalidArgument("wal: rotate with uncommitted records");
  }
  SPATIAL_RETURN_IF_ERROR(StartSegment(seq_ + 1));
  return seq_;
}

void WalWriter::DeleteSegmentsBelow(uint64_t keep_seq) {
  for (uint64_t s = keep_seq; s-- > 1;) {
    if (std::remove(SegmentPath(prefix_, s).c_str()) != 0) break;
  }
}

Status WalWriter::TruncateSegment(const std::string& prefix, uint64_t seq,
                                  uint64_t keep_bytes) {
  const std::string path = SegmentPath(prefix, seq);
  if (keep_bytes == 0) {
    if (std::remove(path.c_str()) != 0) {
      return Status::Internal("wal: cannot unlink torn segment " + path);
    }
    return Status::OK();
  }
  // Read the surviving prefix, then rewrite the file to exactly that
  // length. A read-modify-rewrite (rather than ftruncate) keeps this
  // portable; segments are small and recovery-time only.
  std::string prefix_bytes;
  {
    std::FILE* in = std::fopen(path.c_str(), "rb");
    if (in == nullptr) {
      return Status::Internal("wal: cannot open torn segment " + path);
    }
    prefix_bytes.resize(keep_bytes);
    const size_t got = std::fread(prefix_bytes.data(), 1, keep_bytes, in);
    std::fclose(in);
    if (got < keep_bytes) {
      return Status::Internal("wal: torn segment shorter than its repair");
    }
  }
  std::FILE* out = std::fopen(path.c_str(), "wb");
  if (out == nullptr) {
    return Status::Internal("wal: cannot rewrite torn segment " + path);
  }
  const bool wrote = std::fwrite(prefix_bytes.data(), 1, prefix_bytes.size(),
                                 out) == prefix_bytes.size() &&
                     std::fflush(out) == 0;
#if defined(SPATIAL_WAL_HAVE_FSYNC)
  if (wrote) {
    while (::fsync(fileno(out)) != 0) {
      if (errno != EINTR) break;
    }
  }
#endif
  std::fclose(out);
  if (!wrote) {
    return Status::Internal("wal: short write repairing segment " + path);
  }
  return Status::OK();
}

Status WalWriter::DurableWrite(const char* data, size_t n) {
  const FaultInjector::Action action =
      injector_ != nullptr ? injector_->OnWrite() : FaultInjector::Action::kOk;
  if (action == FaultInjector::Action::kFailStop) {
    return Status::Internal("injected crash: wal write dropped");
  }
  if (action == FaultInjector::Action::kTorn) {
    // Persist an arbitrary prefix — the classic torn group-commit batch.
    // Half the batch usually cuts mid-record; replay's CRC check must
    // discard the ragged tail.
    const size_t torn = n / 2;
    if (torn > 0) std::fwrite(data, 1, torn, file_);
    std::fflush(file_);
#if defined(SPATIAL_WAL_HAVE_FSYNC)
    ::fsync(fd_);
#endif
    return Status::Internal("injected crash: wal write torn");
  }
  if (std::fwrite(data, 1, n, file_) != n) {
    return Status::Internal("wal: short write in segment " +
                            std::to_string(seq_));
  }
  return Status::OK();
}

Status WalWriter::DurableSync() {
  const FaultInjector::Action action =
      injector_ != nullptr ? injector_->OnWrite() : FaultInjector::Action::kOk;
  if (action != FaultInjector::Action::kOk) {
    return Status::Internal("injected crash: wal fsync dropped");
  }
  if (std::fflush(file_) != 0) {
    return Status::Internal("wal: fflush failed");
  }
#if defined(SPATIAL_WAL_HAVE_FSYNC)
  while (::fsync(fd_) != 0) {
    if (errno == EINTR) continue;
    return Status::Internal("wal: fsync failed");
  }
#endif
  return Status::OK();
}

}  // namespace spatial
