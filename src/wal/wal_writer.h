#ifndef SPATIAL_WAL_WAL_WRITER_H_
#define SPATIAL_WAL_WAL_WRITER_H_

#include <cstdint>
#include <cstdio>
#include <string>

#include "common/result.h"
#include "common/status.h"
#include "obs/metrics.h"
#include "storage/fault_injector.h"
#include "wal/wal_record.h"

namespace spatial {

// Segment file layout: a 16-byte header
//
//   [u32 magic "SWAL"][u32 version][u64 seq]
//
// followed by framed WalRecords (see wal_record.h). Segments are named
// `<prefix>.wal.<seq>` with seq monotonically increasing; the serving
// superblock records the seq of the oldest segment still needed, so
// recovery knows where replay starts and checkpointing knows what to
// unlink.
inline constexpr uint32_t kWalSegmentMagic = 0x4c415753u;  // "SWAL" LE
inline constexpr uint32_t kWalSegmentVersion = 1;
inline constexpr uint32_t kWalSegmentHeaderBytes = 16;

struct WalOptions {
  // Rotation threshold: after a commit pushes a segment past this size the
  // owner is expected to checkpoint (which rotates). Not a hard cap — a
  // commit batch is never split across segments.
  uint64_t segment_bytes = 256 * 1024;
};

// Appender with group commit. Append() only buffers in memory; Commit()
// makes everything appended since the last commit durable with exactly one
// file write plus one fsync, so the per-transaction fsync cost is amortized
// over the whole batch. If Commit() fails, none of the batch is
// acknowledged (a torn tail is discarded by replay's CRC check), and the
// writer is dead — the serving layer treats that as a crash.
//
// The writer only ever creates fresh segments (Open truncates, Rotate
// starts seq+1): recovery never appends to an old segment, it replays the
// tail and rotates past it, which sidesteps append-after-torn-write
// ambiguity entirely.
//
// All durable operations consult the optional FaultInjector; a torn verdict
// persists a prefix of the batch, modelling a crash mid-write.
//
// Single-threaded (the serving layer has exactly one writer thread).
class WalWriter {
 public:
  static std::string SegmentPath(const std::string& prefix, uint64_t seq);

  // Creates (truncating) segment `<prefix>.wal.<seq>` and writes its
  // header durably.
  static Result<WalWriter> Open(const std::string& prefix, uint64_t seq,
                                const WalOptions& options,
                                FaultInjector* injector = nullptr);

  WalWriter(WalWriter&& other) noexcept;
  WalWriter& operator=(WalWriter&& other) noexcept;
  WalWriter(const WalWriter&) = delete;
  WalWriter& operator=(const WalWriter&) = delete;
  ~WalWriter();

  // Buffers a record for the next Commit(). Never touches the file.
  Status Append(const WalRecord& rec);

  // Durably writes every record buffered since the last Commit. No-op when
  // nothing is pending.
  Status Commit();

  // True when the current segment has reached the rotation threshold.
  bool ShouldRotate() const {
    return segment_file_bytes_ >= options_.segment_bytes;
  }

  // Closes the current segment and starts `seq()+1`. Pending appends must
  // be committed first. Returns the new seq.
  Result<uint64_t> Rotate();

  // Unlinks every segment with seq < `keep_seq` (walking downward until a
  // segment is missing). Called after the superblock durably records
  // `keep_seq` as the replay start.
  void DeleteSegmentsBelow(uint64_t keep_seq);

  // Repairs a torn segment discovered by replay: durably rewrites
  // `<prefix>.wal.<seq>` keeping only its first `keep_bytes` bytes
  // (unlinks the file when keep_bytes == 0). Recovery calls this before
  // creating any later segment, so the discarded ragged tail can never be
  // mistaken for mid-log corruption on a subsequent crash.
  static Status TruncateSegment(const std::string& prefix, uint64_t seq,
                                uint64_t keep_bytes);

  uint64_t seq() const { return seq_; }
  uint64_t pending_bytes() const { return pending_.size(); }
  uint64_t segment_file_bytes() const { return segment_file_bytes_; }
  uint64_t commits() const { return commits_; }

  // Optional group-commit instrumentation: when set, Commit() records its
  // fsync latency, batch record count, and batch bytes. The bundle must
  // outlive the writer (ServingDb owns both; survives Rotate moves).
  void set_metrics(obs::WalMetrics* metrics) { metrics_ = metrics; }

 private:
  WalWriter(std::string prefix, WalOptions options, FaultInjector* injector)
      : prefix_(std::move(prefix)), options_(options), injector_(injector) {}

  // Opens a fresh segment file for `seq` and durably writes its header.
  Status StartSegment(uint64_t seq);
  void CloseFile();

  // Durable primitives; both consult the injector.
  Status DurableWrite(const char* data, size_t n);
  Status DurableSync();

  std::string prefix_;
  WalOptions options_;
  FaultInjector* injector_ = nullptr;
  uint64_t seq_ = 0;
  std::FILE* file_ = nullptr;
  int fd_ = -1;
  uint64_t segment_file_bytes_ = 0;
  uint64_t commits_ = 0;
  uint64_t pending_records_ = 0;
  std::string pending_;
  obs::WalMetrics* metrics_ = nullptr;
};

}  // namespace spatial

#endif  // SPATIAL_WAL_WAL_WRITER_H_
